#include "gapsched/setpack/set_packing.hpp"

#include <algorithm>
#include <cassert>

namespace gapsched {

namespace {

// Mutable packing state: which sets are chosen and which chosen set (if any)
// owns each universe element.
class PackingState {
 public:
  explicit PackingState(const SetPackingInstance& inst)
      : inst_(inst),
        owner_(inst.universe, kNone),
        chosen_(inst.sets.size(), 0) {}

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  bool is_chosen(std::size_t s) const { return chosen_[s] != 0; }

  /// Chosen sets overlapping set s (deduplicated, at most |s| entries).
  std::vector<std::size_t> conflicts(std::size_t s) const {
    std::vector<std::size_t> out;
    for (std::size_t e : inst_.sets[s]) {
      const std::size_t o = owner_[e];
      if (o != kNone && std::find(out.begin(), out.end(), o) == out.end()) {
        out.push_back(o);
      }
    }
    return out;
  }

  void add(std::size_t s) {
    assert(!is_chosen(s));
    chosen_[s] = 1;
    for (std::size_t e : inst_.sets[s]) {
      assert(owner_[e] == kNone);
      owner_[e] = s;
    }
    ++count_;
  }

  void remove(std::size_t s) {
    assert(is_chosen(s));
    chosen_[s] = 0;
    for (std::size_t e : inst_.sets[s]) owner_[e] = kNone;
    --count_;
  }

  /// Adds every currently conflict-free set (restores maximality).
  void make_maximal() {
    for (std::size_t s = 0; s < inst_.sets.size(); ++s) {
      if (!is_chosen(s) && conflicts(s).empty()) add(s);
    }
  }

  std::size_t count() const { return count_; }

  std::vector<std::size_t> chosen_indices() const {
    std::vector<std::size_t> out;
    for (std::size_t s = 0; s < inst_.sets.size(); ++s) {
      if (chosen_[s]) out.push_back(s);
    }
    return out;
  }

 private:
  const SetPackingInstance& inst_;
  std::vector<std::size_t> owner_;
  std::vector<char> chosen_;
  std::size_t count_ = 0;
};

bool disjoint(const std::vector<std::size_t>& a,
              const std::vector<std::size_t>& b) {
  auto i = a.begin();
  auto j = b.begin();
  while (i != a.end() && j != b.end()) {
    if (*i < *j) {
      ++i;
    } else if (*j < *i) {
      ++j;
    } else {
      return false;
    }
  }
  return true;
}

// One (1 -> 2) improvement: find a chosen set C and two disjoint unchosen
// sets conflicting only with C; returns true if applied.
bool improve_1_to_2(const SetPackingInstance& inst, PackingState& st) {
  // Bucket unchosen sets by their unique conflicting chosen set.
  std::vector<std::size_t> singles;  // unchosen sets with exactly 1 conflict
  for (std::size_t s = 0; s < inst.sets.size(); ++s) {
    if (st.is_chosen(s)) continue;
    if (st.conflicts(s).size() == 1) singles.push_back(s);
  }
  for (std::size_t ai = 0; ai < singles.size(); ++ai) {
    const std::size_t a = singles[ai];
    const std::size_t ca = st.conflicts(a)[0];
    for (std::size_t bi = ai + 1; bi < singles.size(); ++bi) {
      const std::size_t b = singles[bi];
      if (st.conflicts(b)[0] != ca) continue;
      if (!disjoint(inst.sets[a], inst.sets[b])) continue;
      st.remove(ca);
      st.add(a);
      st.add(b);
      st.make_maximal();
      return true;
    }
  }
  return false;
}

// One (2 -> 3) improvement: remove chosen {C1, C2}, insert three pairwise
// disjoint unchosen sets each conflicting only within {C1, C2}.
bool improve_2_to_3(const SetPackingInstance& inst, PackingState& st) {
  // Candidates with <= 2 conflicts, grouped by conflict signature.
  std::vector<std::size_t> cands;
  for (std::size_t s = 0; s < inst.sets.size(); ++s) {
    if (!st.is_chosen(s) && st.conflicts(s).size() <= 2) cands.push_back(s);
  }
  const std::vector<std::size_t> chosen = st.chosen_indices();
  for (std::size_t i1 = 0; i1 < chosen.size(); ++i1) {
    for (std::size_t i2 = i1 + 1; i2 < chosen.size(); ++i2) {
      const std::size_t c1 = chosen[i1], c2 = chosen[i2];
      std::vector<std::size_t> pool;
      for (std::size_t s : cands) {
        bool ok = true;
        for (std::size_t c : st.conflicts(s)) {
          if (c != c1 && c != c2) {
            ok = false;
            break;
          }
        }
        if (ok) pool.push_back(s);
      }
      if (pool.size() < 3) continue;
      for (std::size_t x = 0; x < pool.size(); ++x) {
        for (std::size_t y = x + 1; y < pool.size(); ++y) {
          if (!disjoint(inst.sets[pool[x]], inst.sets[pool[y]])) continue;
          for (std::size_t z = y + 1; z < pool.size(); ++z) {
            if (disjoint(inst.sets[pool[x]], inst.sets[pool[z]]) &&
                disjoint(inst.sets[pool[y]], inst.sets[pool[z]])) {
              st.remove(c1);
              st.remove(c2);
              st.add(pool[x]);
              st.add(pool[y]);
              st.add(pool[z]);
              st.make_maximal();
              return true;
            }
          }
        }
      }
    }
  }
  return false;
}

}  // namespace

PackingResult greedy_packing(const SetPackingInstance& inst) {
  PackingState st(inst);
  st.make_maximal();
  return PackingResult{st.chosen_indices()};
}

PackingResult local_search_packing(const SetPackingInstance& inst,
                                   int swap_size) {
  assert(swap_size >= 0 && swap_size <= 2);
  PackingState st(inst);
  st.make_maximal();
  bool improved = true;
  while (improved) {
    improved = false;
    if (swap_size >= 1 && improve_1_to_2(inst, st)) {
      improved = true;
      continue;
    }
    if (swap_size >= 2 && improve_2_to_3(inst, st)) {
      improved = true;
      continue;
    }
  }
  return PackingResult{st.chosen_indices()};
}

bool is_valid_packing(const SetPackingInstance& inst,
                      const std::vector<std::size_t>& chosen) {
  std::vector<char> used(inst.universe, 0);
  for (std::size_t s : chosen) {
    if (s >= inst.sets.size()) return false;
    for (std::size_t e : inst.sets[s]) {
      if (e >= inst.universe || used[e]) return false;
      used[e] = 1;
    }
  }
  return true;
}

}  // namespace gapsched

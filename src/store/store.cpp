#include "gapsched/store/store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "gapsched/core/hash.hpp"

namespace gapsched::store {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

double get_f64(const char* p) {
  const std::uint64_t bits = get_u64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

bool write_all_at(int fd, const char* data, std::size_t n, std::uint64_t off) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t wrote =
        ::pwrite(fd, data + done, n - done, static_cast<off_t>(off + done));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(wrote);
  }
  return true;
}

bool read_exact_at(int fd, char* data, std::size_t n, std::uint64_t off) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got =
        ::pread(fd, data + done, n - done, static_cast<off_t>(off + done));
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return false;  // EOF short of n is a failure here
    }
    done += static_cast<std::size_t>(got);
  }
  return true;
}

std::uint64_t file_size_of(int fd) {
  struct stat st{};
  if (::fstat(fd, &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

/// Serialized file header: magic, format version, reserved zero word.
std::string make_file_header() {
  std::string header(kFileMagic, sizeof kFileMagic);
  put_u32(header, kFormatVersion);
  put_u32(header, 0);
  return header;
}

/// Serializes one full record (header + key + payload + trailing checksum).
std::string make_record(std::uint64_t digest, std::string_view key_text,
                        std::string_view payload, double cost_ms) {
  std::string rec;
  rec.reserve(record_bytes(key_text.size(), payload.size()));
  put_u32(rec, kRecordMagic);
  put_u32(rec, static_cast<std::uint32_t>(key_text.size()));
  put_u32(rec, static_cast<std::uint32_t>(payload.size()));
  put_u32(rec, 0);
  put_u64(rec, digest);
  put_f64(rec, cost_ms);
  rec.append(key_text);
  rec.append(payload);
  put_u64(rec, fnv1a64(rec));
  return rec;
}

struct RecordHead {
  std::uint32_t magic = 0;
  std::uint32_t key_len = 0;
  std::uint32_t payload_len = 0;
  std::uint64_t digest = 0;
  double cost_ms = 0.0;
};

RecordHead parse_record_head(const char* p) {
  RecordHead head;
  head.magic = get_u32(p);
  head.key_len = get_u32(p + 4);
  head.payload_len = get_u32(p + 8);
  head.digest = get_u64(p + 16);
  head.cost_ms = get_f64(p + 24);
  return head;
}

bool head_framing_ok(const RecordHead& head) {
  return head.magic == kRecordMagic && head.key_len > 0 &&
         head.key_len <= kMaxFieldBytes && head.payload_len <= kMaxFieldBytes;
}

/// True when `rec` (a complete on-disk record image) checksums clean.
bool record_checksum_ok(std::string_view rec) {
  const std::size_t body = rec.size() - kRecordChecksumBytes;
  return fnv1a64(rec.substr(0, body)) == get_u64(rec.data() + body);
}

}  // namespace

DiskStore::DiskStore(std::string path, StoreOptions options)
    : path_(std::move(path)), options_(options) {}

DiskStore::~DiskStore() {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<DiskStore> DiskStore::open(const std::string& path,
                                           StoreOptions options,
                                           std::string* error) {
  std::unique_ptr<DiskStore> store(new DiskStore(path, options));
  std::string local_error;
  if (!store->open_locked(&local_error)) {
    if (error != nullptr) *error = local_error;
    return nullptr;
  }
  return store;
}

bool DiskStore::lock_file_locked(int op) const {
  while (::flock(fd_, op) != 0) {
    if (errno != EINTR) return false;
  }
  return true;
}

bool DiskStore::open_locked(std::string* error) {
  std::lock_guard<std::mutex> lk(mu_);
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    *error = errno_message("open " + path_);
    return false;
  }
  if (!lock_file_locked(LOCK_EX)) {
    *error = errno_message("flock " + path_);
    return false;
  }
  const std::uint64_t size = file_size_of(fd_);
  const std::string header = make_file_header();
  bool fresh = size == 0;
  if (size > 0 && size < kFileHeaderBytes) {
    // A crash during store creation can leave a short header prefix; if the
    // bytes on disk match ours it is our torn header, not a foreign file.
    std::string prefix(static_cast<std::size_t>(size), '\0');
    if (read_exact_at(fd_, prefix.data(), prefix.size(), 0) &&
        header.compare(0, prefix.size(), prefix) == 0) {
      fresh = true;
    } else {
      lock_file_locked(LOCK_UN);
      *error = path_ + " is not a gapsched store (short unrecognized header)";
      return false;
    }
  }
  if (fresh) {
    if (::ftruncate(fd_, 0) != 0 ||
        !write_all_at(fd_, header.data(), header.size(), 0) ||
        ::fsync(fd_) != 0) {
      lock_file_locked(LOCK_UN);
      *error = errno_message("initialize " + path_);
      return false;
    }
  } else {
    char buf[kFileHeaderBytes];
    if (!read_exact_at(fd_, buf, sizeof buf, 0)) {
      lock_file_locked(LOCK_UN);
      *error = errno_message("read header of " + path_);
      return false;
    }
    if (std::memcmp(buf, kFileMagic, sizeof kFileMagic) != 0) {
      lock_file_locked(LOCK_UN);
      *error = path_ + " is not a gapsched store (bad magic)";
      return false;
    }
    const std::uint32_t version = get_u32(buf + sizeof kFileMagic);
    if (version != kFormatVersion) {
      lock_file_locked(LOCK_UN);
      *error = path_ + ": unsupported store format version " +
               std::to_string(version) + " (this build reads version " +
               std::to_string(kFormatVersion) + ")";
      return false;
    }
  }
  scan_end_ = kFileHeaderBytes;
  scan_locked(/*writable=*/true);
  lock_file_locked(LOCK_UN);
  return true;
}

void DiskStore::scan_locked(bool writable) {
  std::uint64_t size = file_size_of(fd_);
  std::uint64_t off = scan_end_;
  while (off < size) {
    if (off + kRecordHeaderBytes > size) break;  // torn tail: header cut off
    char head_buf[kRecordHeaderBytes];
    if (!read_exact_at(fd_, head_buf, sizeof head_buf, off)) break;
    const RecordHead head = parse_record_head(head_buf);
    if (!head_framing_ok(head)) {
      // The framing itself is gone: nothing after this offset can be
      // trusted to line up on record boundaries, so the rest of the file
      // is unrecoverable (unlike a checksum failure, which leaves the
      // next record reachable).
      ++rejected_records_;
      break;
    }
    const std::uint64_t total = record_bytes(head.key_len, head.payload_len);
    if (off + total > size) break;  // torn tail: body cut off
    std::string rec(static_cast<std::size_t>(total), '\0');
    if (!read_exact_at(fd_, rec.data(), rec.size(), off)) break;
    if (record_checksum_ok(rec)) {
      // Duplicate digests can exist when two processes raced the same
      // entry between refreshes; last wins (the payloads are equal for
      // deterministic solvers, and loads re-verify either way).
      index_[head.digest] =
          RecordInfo{head.digest, off, static_cast<std::size_t>(total),
                     head.cost_ms};
    } else {
      ++rejected_records_;  // skippable: framing after it still lines up
    }
    off += total;
  }
  if (writable && off < size) {
    // Drop the unrecoverable tail so the file is append-clean again. Only
    // ever done under the exclusive file lock: with no writer mid-append,
    // a short or unframed tail is a crash/corruption leftover, not an
    // in-flight record.
    if (::ftruncate(fd_, static_cast<off_t>(off)) == 0) {
      truncated_bytes_ += static_cast<std::size_t>(size - off);
      size = off;
    }
  }
  scan_end_ = off;
}

std::size_t DiskStore::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.size();
}

bool DiskStore::contains(std::uint64_t digest) const {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.find(digest) != index_.end();
}

std::optional<std::string> DiskStore::load(std::uint64_t digest,
                                           std::string_view key_text) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(digest);
  if (it == index_.end()) {
    // Another handle (CLI session, server shard, other process) may have
    // published records since our last scan; pick up the tail before
    // declaring a miss.
    if (file_size_of(fd_) > scan_end_ && lock_file_locked(LOCK_EX)) {
      scan_locked(/*writable=*/!poisoned_);
      lock_file_locked(LOCK_UN);
      it = index_.find(digest);
    }
    if (it == index_.end()) return std::nullopt;
  }
  const RecordInfo info = it->second;
  std::string rec(info.bytes, '\0');
  // Everything read back is untrusted until re-verified: the bytes may
  // have rotted since the index scan. Checksum, digest, and the full key
  // text must all match or the record is quarantined.
  bool good = read_exact_at(fd_, rec.data(), rec.size(), info.offset) &&
              record_checksum_ok(rec);
  if (good) {
    const RecordHead head = parse_record_head(rec.data());
    good = head_framing_ok(head) && head.digest == digest &&
           head.key_len == key_text.size() &&
           record_bytes(head.key_len, head.payload_len) == info.bytes &&
           std::memcmp(rec.data() + kRecordHeaderBytes, key_text.data(),
                       key_text.size()) == 0;
    if (good) {
      ++loads_;
      return rec.substr(kRecordHeaderBytes + head.key_len, head.payload_len);
    }
  }
  ++rejected_records_;
  index_.erase(digest);
  return std::nullopt;
}

bool DiskStore::sync_for_append_locked(std::string* error) {
  // Compaction (ours or another process's) replaces the file via rename;
  // a writer still holding the old inode must notice and reopen, or its
  // appends would land in an orphan no reader can see.
  struct stat by_path{};
  struct stat by_fd{};
  if (::stat(path_.c_str(), &by_path) == 0 && ::fstat(fd_, &by_fd) == 0 &&
      (by_path.st_dev != by_fd.st_dev || by_path.st_ino != by_fd.st_ino)) {
    const int next = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (next < 0) {
      if (error != nullptr) *error = errno_message("reopen " + path_);
      return false;
    }
    lock_file_locked(LOCK_UN);
    ::close(fd_);
    fd_ = next;
    if (!lock_file_locked(LOCK_EX)) {
      if (error != nullptr) *error = errno_message("flock " + path_);
      return false;
    }
    index_.clear();
    scan_end_ = kFileHeaderBytes;
  }
  scan_locked(/*writable=*/true);
  return true;
}

bool DiskStore::append(std::uint64_t digest, std::string_view key_text,
                       std::string_view payload, double cost_ms,
                       std::string* error) {
  if (key_text.empty() || key_text.size() > kMaxFieldBytes ||
      payload.size() > kMaxFieldBytes) {
    if (error != nullptr) *error = "record field size out of range";
    return false;
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (poisoned_) {
    if (error != nullptr) *error = "store handle poisoned by simulated crash";
    return false;
  }
  if (!lock_file_locked(LOCK_EX)) {
    if (error != nullptr) *error = errno_message("flock " + path_);
    return false;
  }
  if (!sync_for_append_locked(error)) {
    lock_file_locked(LOCK_UN);
    return false;
  }
  if (index_.find(digest) != index_.end()) {
    lock_file_locked(LOCK_UN);
    return true;  // someone already persisted this entry
  }
  const std::string rec = make_record(digest, key_text, payload, cost_ms);
  const std::uint64_t off = scan_end_;
  if (options_.fail_append_after > 0) {
    // Simulated crash: a prefix of the record reaches disk, nothing is
    // fsynced or published, and this handle dies as a process would.
    const std::size_t partial = std::min(options_.fail_append_after,
                                         rec.size());
    write_all_at(fd_, rec.data(), partial, off);
    poisoned_ = true;
    lock_file_locked(LOCK_UN);
    if (error != nullptr) *error = "simulated crash after " +
                                   std::to_string(partial) + " bytes";
    return false;
  }
  if (!write_all_at(fd_, rec.data(), rec.size(), off) || ::fsync(fd_) != 0) {
    if (error != nullptr) *error = errno_message("append to " + path_);
    lock_file_locked(LOCK_UN);
    return false;
  }
  // Durable on disk: publish. Readers can only ever index fsynced bytes.
  index_[digest] = RecordInfo{digest, off, rec.size(), cost_ms};
  scan_end_ = off + rec.size();
  ++appends_;
  bool ok = true;
  if (options_.max_bytes > 0 && scan_end_ > options_.max_bytes) {
    ok = compact_locked(error);
  }
  lock_file_locked(LOCK_UN);
  return ok;
}

void DiskStore::invalidate(std::uint64_t digest) {
  std::lock_guard<std::mutex> lk(mu_);
  index_.erase(digest);
}

void DiskStore::refresh() {
  std::lock_guard<std::mutex> lk(mu_);
  if (file_size_of(fd_) > scan_end_ && lock_file_locked(LOCK_EX)) {
    scan_locked(/*writable=*/!poisoned_);
    lock_file_locked(LOCK_UN);
  }
}

bool DiskStore::compact(std::string* error) {
  std::lock_guard<std::mutex> lk(mu_);
  if (options_.max_bytes == 0) return true;
  if (!lock_file_locked(LOCK_EX)) {
    if (error != nullptr) *error = errno_message("flock " + path_);
    return false;
  }
  bool ok = sync_for_append_locked(error) && compact_locked(error);
  lock_file_locked(LOCK_UN);
  return ok;
}

bool DiskStore::compact_locked(std::string* error) {
  // Keep the most expensive records (recorded solve cost is the value of a
  // cached entry) down to 3/4 of the budget, so compaction is not
  // immediately re-triggered by the next append.
  const std::uint64_t budget = std::max<std::uint64_t>(
      kFileHeaderBytes, options_.max_bytes - options_.max_bytes / 4);
  std::vector<RecordInfo> by_cost;
  by_cost.reserve(index_.size());
  for (const auto& [digest, info] : index_) by_cost.push_back(info);
  std::sort(by_cost.begin(), by_cost.end(),
            [](const RecordInfo& a, const RecordInfo& b) {
              if (a.cost_ms != b.cost_ms) return a.cost_ms > b.cost_ms;
              return a.offset < b.offset;
            });
  std::vector<RecordInfo> kept;
  std::uint64_t bytes = kFileHeaderBytes;
  for (const RecordInfo& info : by_cost) {
    if (bytes + info.bytes > budget) continue;
    bytes += info.bytes;
    kept.push_back(info);
  }
  // Preserve append order in the rewritten file (stable, debuggable).
  std::sort(kept.begin(), kept.end(),
            [](const RecordInfo& a, const RecordInfo& b) {
              return a.offset < b.offset;
            });

  const std::string tmp_path = path_ + ".compact";
  const int tmp_fd =
      ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) {
    if (error != nullptr) *error = errno_message("open " + tmp_path);
    return false;
  }
  // Take the exclusive lock on the replacement before it becomes the store,
  // so lock coverage is continuous across the rename.
  while (::flock(tmp_fd, LOCK_EX) != 0 && errno == EINTR) {
  }
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = errno_message(what);
    ::close(tmp_fd);
    ::unlink(tmp_path.c_str());
    return false;
  };
  const std::string header = make_file_header();
  if (!write_all_at(tmp_fd, header.data(), header.size(), 0)) {
    return fail("write " + tmp_path);
  }
  std::unordered_map<std::uint64_t, RecordInfo> new_index;
  std::uint64_t off = kFileHeaderBytes;
  std::size_t copied = 0;
  for (const RecordInfo& info : kept) {
    std::string rec(info.bytes, '\0');
    if (!read_exact_at(fd_, rec.data(), rec.size(), info.offset) ||
        !record_checksum_ok(rec)) {
      ++rejected_records_;  // rotted since the scan; drop instead of copying
      continue;
    }
    if (!write_all_at(tmp_fd, rec.data(), rec.size(), off)) {
      return fail("write " + tmp_path);
    }
    new_index[info.digest] = RecordInfo{info.digest, off, info.bytes,
                                        info.cost_ms};
    off += info.bytes;
    ++copied;
  }
  if (::fsync(tmp_fd) != 0) return fail("fsync " + tmp_path);
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return fail("rename " + tmp_path);
  }
  dropped_records_ += index_.size() - copied;
  ::close(fd_);
  fd_ = tmp_fd;  // already exclusively locked; the caller unlocks it
  index_ = std::move(new_index);
  scan_end_ = off;
  ++compactions_;
  return true;
}

StoreStats DiskStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  StoreStats s;
  s.entries = index_.size();
  s.file_bytes = static_cast<std::size_t>(file_size_of(fd_));
  s.appends = appends_;
  s.loads = loads_;
  s.rejected_records = rejected_records_;
  s.truncated_bytes = truncated_bytes_;
  s.compactions = compactions_;
  s.dropped_records = dropped_records_;
  return s;
}

std::vector<RecordInfo> DiskStore::records() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<RecordInfo> out;
  out.reserve(index_.size());
  for (const auto& [digest, info] : index_) out.push_back(info);
  std::sort(out.begin(), out.end(),
            [](const RecordInfo& a, const RecordInfo& b) {
              return a.offset < b.offset;
            });
  return out;
}

}  // namespace gapsched::store

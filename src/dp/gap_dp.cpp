#include "gapsched/dp/gap_dp.hpp"

#include <utility>

#include "gapsched/dp/dp_common.hpp"

namespace gapsched {

namespace {

constexpr std::int64_t kInf = dp::kInfCost;

class Solver {
 public:
  explicit Solver(const Instance& inst)
      : ctx_(inst), p_(inst.processors) {}

  std::string limit_violation() const { return ctx_.limit_violation(); }

  GapDpResult run() {
    const std::size_t n = ctx_.inst->n();
    if (n == 0) return GapDpResult{true, 0, Schedule(0), 0, {}};

    const std::size_t i_min = ctx_.index_of(ctx_.inst->earliest_release());
    const std::size_t i_max = ctx_.index_of(ctx_.inst->latest_deadline());

    std::int64_t best = kInf;
    int best_l1 = -1, best_l2 = -1;
    for (int l1 = 0; l1 <= p_; ++l1) {
      for (int l2 = 0; l2 <= p_; ++l2) {
        const std::int64_t w = solve(i_min, i_max, n, 0, l1, l2);
        const std::int64_t total = dp::add_sat(l1, w);
        if (total < best) {
          best = total;
          best_l1 = l1;
          best_l2 = l2;
        }
      }
    }
    if (best_l1 < 0) {
      return GapDpResult{false, 0, Schedule(n), memo_.size(), {}};
    }

    Schedule sched(n);
    reconstruct(i_min, i_max, n, 0, best_l1, best_l2, sched);
    sched.assign_processors_staircase();
    return GapDpResult{true, best, std::move(sched), memo_.size(), {}};
  }

 private:
  // W(t1, t2, k, q, l1, l2): min sum of Delta(t) over t in (t1, t2] for
  // schedules of the k-job set in [t1, t2] with occupancy l1 at t1 and l2 at
  // t2, q of the t2 occupants being ancestor commitments.
  std::int64_t solve(std::size_t i1, std::size_t i2, std::size_t k, int q,
                     int l1, int l2) {
    const std::uint64_t key = dp::pack_state(i1, i2, k, q, l1, l2);
    if (const auto* hit = memo_.find(key)) return hit->value;

    const Time t1 = ctx_.theta[i1];
    const Time t2 = ctx_.theta[i2];
    std::int64_t best = kInf;
    dp::Choice choice;

    if (i1 == i2) {
      // Point window: all k jobs (plus q ancestors) sit at t1.
      if (l1 == l2 && l1 == q + static_cast<int>(k) && l1 <= p_) {
        best = 0;
        choice.kind = dp::Choice::Kind::kBasePoint;
      }
    } else if (k == 0) {
      // Empty window: occupancy 0 strictly inside; the q ancestor jobs at t2
      // wake from a fully idle previous unit.
      if (l1 == 0 && l2 == q) {
        best = l2;
        choice.kind = dp::Choice::Kind::kBaseEmpty;
      }
    } else {
      const std::vector<std::size_t> jobs = ctx_.job_set(t1, t2, k);
      if (jobs.size() == k) {
        const std::size_t jk = jobs.back();
        const Time lo = std::max(t1, ctx_.inst->jobs[jk].release());
        const Time hi = std::min(t2, ctx_.inst->jobs[jk].deadline());
        auto first = std::lower_bound(ctx_.theta.begin(), ctx_.theta.end(), lo);
        for (auto it = first; it != ctx_.theta.end() && *it <= hi; ++it) {
          const std::size_t idx =
              static_cast<std::size_t>(it - ctx_.theta.begin());
          if (!ctx_.is_core[idx]) continue;
          const Time tp = *it;
          if (tp == t2) {
            // jk takes one of the t2 slots; same window, one fewer job.
            if (l2 >= q + 1) {
              const std::int64_t w = solve(i1, i2, k - 1, q + 1, l1, l2);
              if (w < best) {
                best = w;
                choice = {dp::Choice::Kind::kAtRightEdge, idx, 0, 0, 0};
              }
            }
            continue;
          }
          // Split: jobs released after tp go right; the rest (minus jk,
          // which sits at tp) go left with q' = 1 encoding jk's slot.
          std::size_t right_jobs = 0;
          for (std::size_t x = 0; x + 1 < k; ++x) {
            if (ctx_.inst->jobs[jobs[x]].release() > tp) ++right_jobs;
          }
          const std::size_t left_jobs = k - 1 - right_jobs;
          const std::size_t ridx = idx + 1;
          // The +1 closure guarantees tp+1 is the next candidate time.
          if (ridx >= ctx_.theta.size() || ctx_.theta[ridx] != tp + 1) {
            continue;
          }
          for (int lp = 1; lp <= p_; ++lp) {
            const std::int64_t left = solve(i1, idx, left_jobs, 1, l1, lp);
            if (left >= kInf) continue;
            for (int ldp = 0; ldp <= p_; ++ldp) {
              const std::int64_t right = solve(ridx, i2, right_jobs, q, ldp, l2);
              if (right >= kInf) continue;
              const std::int64_t total = dp::add_sat(
                  dp::add_sat(left, std::max(0, ldp - lp)), right);
              if (total < best) {
                best = total;
                choice = {dp::Choice::Kind::kSplit, idx, right_jobs, lp, ldp};
              }
            }
          }
        }
      }
    }

    memo_.insert(key, best, choice);
    return best;
  }

  void reconstruct(std::size_t i1, std::size_t i2, std::size_t k, int q,
                   int l1, int l2, Schedule& out) {
    const std::uint64_t key = dp::pack_state(i1, i2, k, q, l1, l2);
    const dp::Choice& c = memo_.find(key)->choice;
    const Time t1 = ctx_.theta[i1];
    const Time t2 = ctx_.theta[i2];
    switch (c.kind) {
      case dp::Choice::Kind::kBasePoint: {
        for (std::size_t j : ctx_.job_set(t1, t2, k)) out.place(j, t1);
        return;
      }
      case dp::Choice::Kind::kBaseEmpty:
        return;
      case dp::Choice::Kind::kAtRightEdge: {
        const std::vector<std::size_t> jobs = ctx_.job_set(t1, t2, k);
        out.place(jobs.back(), t2);
        reconstruct(i1, i2, k - 1, q + 1, l1, l2, out);
        return;
      }
      case dp::Choice::Kind::kSplit: {
        const std::vector<std::size_t> jobs = ctx_.job_set(t1, t2, k);
        const Time tp = ctx_.theta[c.tprime_idx];
        out.place(jobs.back(), tp);
        reconstruct(i1, c.tprime_idx, k - 1 - c.right_jobs, 1, l1, c.lprime,
                    out);
        reconstruct(c.tprime_idx + 1, i2, c.right_jobs, q, c.ldprime, l2, out);
        return;
      }
    }
  }

  dp::DpContext ctx_;
  int p_;
  dp::MemoTable<std::int64_t> memo_;
};

}  // namespace

GapDpResult solve_gap_dp(const Instance& inst) {
  Solver solver(inst);
  // Reject before the first pack_state call: oversized instances would
  // alias memo keys and return wrong optima (the engine's prep pipeline
  // decomposes first, so this fires only for a genuinely oversized
  // component).
  if (std::string diag = solver.limit_violation(); !diag.empty()) {
    GapDpResult rejected;
    rejected.error = std::move(diag);
    return rejected;
  }
  return solver.run();
}

}  // namespace gapsched

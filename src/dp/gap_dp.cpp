#include "gapsched/dp/gap_dp.hpp"

#include <string>
#include <utility>

#include "gapsched/dp/dp_engine.hpp"

namespace gapsched {

GapDpResult solve_gap_dp(const Instance& inst, const dp::DpOptions& opts) {
  if (inst.n() == 0) {
    GapDpResult out;
    out.feasible = true;
    out.schedule = Schedule(0);
    return out;
  }
  dp::DpContext ctx(inst);
  // Reject before the first pack_state call: oversized instances would
  // alias memo keys and return wrong optima (the engine's prep pipeline
  // decomposes first, so this fires only for a genuinely oversized
  // component).
  if (std::string diag = ctx.limit_violation(); !diag.empty()) {
    GapDpResult rejected;
    rejected.error = std::move(diag);
    return rejected;
  }
  dp::DpRun<dp::GapPolicy> run = dp::run_dp(ctx, dp::GapPolicy{}, opts);
  GapDpResult out;
  out.feasible = run.feasible;
  if (run.feasible) {
    out.transitions = run.value;
    out.schedule = std::move(run.schedule);
  } else {
    out.schedule = Schedule(inst.n());
  }
  out.states = run.states;
  out.memo = run.memo;
  return out;
}

GapDpResult solve_gap_dp(const Instance& inst) {
  return solve_gap_dp(inst, dp::DpOptions{});
}

}  // namespace gapsched

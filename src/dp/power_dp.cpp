#include "gapsched/dp/power_dp.hpp"

#include <cassert>
#include <limits>
#include <utility>

#include "gapsched/dp/dp_common.hpp"

namespace gapsched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class Solver {
 public:
  Solver(const Instance& inst, double alpha)
      : ctx_(inst), p_(inst.processors), alpha_(alpha) {
    assert(alpha >= 0.0);
  }

  std::string limit_violation() const { return ctx_.limit_violation(); }

  PowerDpResult run() {
    const std::size_t n = ctx_.inst->n();
    if (n == 0) return PowerDpResult{true, 0.0, Schedule(0), 0, {}};

    const std::size_t i_min = ctx_.index_of(ctx_.inst->earliest_release());
    const std::size_t i_max = ctx_.index_of(ctx_.inst->latest_deadline());

    double best = kInf;
    int best_l1 = -1, best_l2 = -1;
    for (int l1 = 0; l1 <= p_; ++l1) {
      for (int l2 = 0; l2 <= p_; ++l2) {
        const double w = solve(i_min, i_max, n, 0, l1, l2);
        // Top level owns t_min: l1 processors wake and run one unit there.
        const double total = l1 * (1.0 + alpha_) + w;
        if (total < best) {
          best = total;
          best_l1 = l1;
          best_l2 = l2;
        }
      }
    }
    if (best_l1 < 0) {
      return PowerDpResult{false, 0.0, Schedule(n), memo_.size(), {}};
    }

    Schedule sched(n);
    reconstruct(i_min, i_max, n, 0, best_l1, best_l2, sched);
    sched.assign_processors_staircase();
    return PowerDpResult{true, best, std::move(sched), memo_.size(), {}};
  }

 private:
  // Power cost of moving from m_prev active processors to m_new active ones
  // across `idle` fully idle time units, including m_new's active unit:
  // carried processors pay the idle time, fresh ones pay alpha.
  double step_cost(int m_prev, int m_new, std::int64_t idle) const {
    if (m_new == 0) return 0.0;
    double cost = static_cast<double>(m_new);
    if (idle == 0) return cost + alpha_ * std::max(0, m_new - m_prev);
    const int carried = std::min(m_prev, m_new);
    const double carry_unit = std::min(static_cast<double>(idle), alpha_);
    return cost + carried * carry_unit + alpha_ * (m_new - carried);
  }

  // W(t1, t2, k, q, l1, l2): min over schedules and active profiles of
  // sum over t in (t1, t2] of m(t) + alpha * Delta(t), with m(t1) = l1,
  // m(t2) = l2, q ancestor jobs at t2.
  double solve(std::size_t i1, std::size_t i2, std::size_t k, int q, int l1,
               int l2) {
    const std::uint64_t key = dp::pack_state(i1, i2, k, q, l1, l2);
    if (const auto* hit = memo_.find(key)) return hit->value;

    const Time t1 = ctx_.theta[i1];
    const Time t2 = ctx_.theta[i2];
    double best = kInf;
    dp::Choice choice;

    if (i1 == i2) {
      // Point window: q ancestors + k own jobs at t1 need l1 active slots.
      if (l1 == l2 && q + static_cast<int>(k) <= l1 && l1 <= p_) {
        best = 0.0;
        choice.kind = dp::Choice::Kind::kBasePoint;
      }
    } else if (k == 0) {
      // Empty window: optimal bridging between l1 active at t1 and l2
      // active at t2 (the q <= l2 ancestor jobs at t2 fit inside l2).
      if (q <= l2) {
        best = step_cost(l1, l2, t2 - t1 - 1);
        choice.kind = dp::Choice::Kind::kBaseEmpty;
      }
    } else {
      const std::vector<std::size_t> jobs = ctx_.job_set(t1, t2, k);
      if (jobs.size() == k) {
        const std::size_t jk = jobs.back();
        const Time lo = std::max(t1, ctx_.inst->jobs[jk].release());
        const Time hi = std::min(t2, ctx_.inst->jobs[jk].deadline());
        auto first = std::lower_bound(ctx_.theta.begin(), ctx_.theta.end(), lo);
        for (auto it = first; it != ctx_.theta.end() && *it <= hi; ++it) {
          const std::size_t idx =
              static_cast<std::size_t>(it - ctx_.theta.begin());
          if (!ctx_.is_core[idx]) continue;
          const Time tp = *it;
          if (tp == t2) {
            if (l2 >= q + 1) {
              const double w = solve(i1, i2, k - 1, q + 1, l1, l2);
              if (w < best) {
                best = w;
                choice = {dp::Choice::Kind::kAtRightEdge, idx, 0, 0, 0};
              }
            }
            continue;
          }
          std::size_t right_jobs = 0;
          for (std::size_t x = 0; x + 1 < k; ++x) {
            if (ctx_.inst->jobs[jobs[x]].release() > tp) ++right_jobs;
          }
          const std::size_t left_jobs = k - 1 - right_jobs;
          const std::size_t ridx = idx + 1;
          if (ridx >= ctx_.theta.size() || ctx_.theta[ridx] != tp + 1) {
            continue;
          }
          for (int lp = 1; lp <= p_; ++lp) {
            const double left = solve(i1, idx, left_jobs, 1, l1, lp);
            if (left == kInf) continue;
            for (int ldp = 0; ldp <= p_; ++ldp) {
              const double right = solve(ridx, i2, right_jobs, q, ldp, l2);
              if (right == kInf) continue;
              // Glue owns time tp+1: its active units plus its wake-ups.
              const double glue = ldp + alpha_ * std::max(0, ldp - lp);
              const double total = left + glue + right;
              if (total < best) {
                best = total;
                choice = {dp::Choice::Kind::kSplit, idx, right_jobs, lp, ldp};
              }
            }
          }
        }
      }
    }

    memo_.insert(key, best, choice);
    return best;
  }

  void reconstruct(std::size_t i1, std::size_t i2, std::size_t k, int q,
                   int l1, int l2, Schedule& out) {
    const std::uint64_t key = dp::pack_state(i1, i2, k, q, l1, l2);
    const dp::Choice& c = memo_.find(key)->choice;
    const Time t1 = ctx_.theta[i1];
    const Time t2 = ctx_.theta[i2];
    switch (c.kind) {
      case dp::Choice::Kind::kBasePoint: {
        for (std::size_t j : ctx_.job_set(t1, t2, k)) out.place(j, t1);
        return;
      }
      case dp::Choice::Kind::kBaseEmpty:
        return;
      case dp::Choice::Kind::kAtRightEdge: {
        const std::vector<std::size_t> jobs = ctx_.job_set(t1, t2, k);
        out.place(jobs.back(), t2);
        reconstruct(i1, i2, k - 1, q + 1, l1, l2, out);
        return;
      }
      case dp::Choice::Kind::kSplit: {
        const std::vector<std::size_t> jobs = ctx_.job_set(t1, t2, k);
        out.place(jobs.back(), ctx_.theta[c.tprime_idx]);
        reconstruct(i1, c.tprime_idx, k - 1 - c.right_jobs, 1, l1, c.lprime,
                    out);
        reconstruct(c.tprime_idx + 1, i2, c.right_jobs, q, c.ldprime, l2, out);
        return;
      }
    }
  }

  dp::DpContext ctx_;
  int p_;
  double alpha_;
  dp::MemoTable<double> memo_;
};

}  // namespace

PowerDpResult solve_power_dp(const Instance& inst, double alpha) {
  Solver solver(inst, alpha);
  // Reject before the first pack_state call (see solve_gap_dp).
  if (std::string diag = solver.limit_violation(); !diag.empty()) {
    PowerDpResult rejected;
    rejected.error = std::move(diag);
    return rejected;
  }
  return solver.run();
}

}  // namespace gapsched

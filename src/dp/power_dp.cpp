#include "gapsched/dp/power_dp.hpp"

#include <cassert>
#include <string>
#include <utility>

#include "gapsched/dp/dp_engine.hpp"

namespace gapsched {

PowerDpResult solve_power_dp(const Instance& inst, double alpha,
                             const dp::DpOptions& opts) {
  assert(alpha >= 0.0);
  if (inst.n() == 0) {
    PowerDpResult out;
    out.feasible = true;
    out.schedule = Schedule(0);
    return out;
  }
  dp::DpContext ctx(inst);
  // Reject before the first pack_state call (see solve_gap_dp).
  if (std::string diag = ctx.limit_violation(); !diag.empty()) {
    PowerDpResult rejected;
    rejected.error = std::move(diag);
    return rejected;
  }
  dp::PowerPolicy policy;
  policy.alpha = alpha;
  dp::DpRun<dp::PowerPolicy> run = dp::run_dp(ctx, policy, opts);
  PowerDpResult out;
  out.feasible = run.feasible;
  if (run.feasible) {
    out.power = run.value;
    out.schedule = std::move(run.schedule);
  } else {
    out.schedule = Schedule(inst.n());
  }
  out.states = run.states;
  out.memo = run.memo;
  return out;
}

PowerDpResult solve_power_dp(const Instance& inst, double alpha) {
  return solve_power_dp(inst, alpha, dp::DpOptions{});
}

}  // namespace gapsched

// Lazily-created process-wide worker pool for the intra-component parallel
// DP candidate scan (dp_engine.hpp). Separate from the engine's batch and
// component-fanout pools: those wait_idle() globally, so a DP running *on*
// one of their workers must fan out to a different pool or it would wait
// on its own in-flight task. A DP task never submits back into dp_pool()
// (the recursion below the root scan is plain function calls), so nesting
// is deadlock-free by construction.

#include "gapsched/dp/dp_stats.hpp"
#include "gapsched/parallel/thread_pool.hpp"

namespace gapsched::dp {

ThreadPool& dp_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gapsched::dp

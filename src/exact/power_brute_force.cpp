#include "gapsched/exact/power_brute_force.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <unordered_map>
#include <vector>

#include "gapsched/core/candidate_times.hpp"

namespace gapsched {

namespace {

using Mask = std::uint32_t;

struct Entry {
  double cost = std::numeric_limits<double>::infinity();
  Mask parent_mask = 0;
  int parent_active = 0;
  Mask chosen = 0;
};

std::uint64_t key_of(Mask mask, int active, int p) {
  return static_cast<std::uint64_t>(mask) * static_cast<std::uint64_t>(p + 1) +
         static_cast<std::uint64_t>(active);
}

// Cost of arriving at a time with `m_new` active processors, `m_prev` active
// at the previous candidate time, separated by `idle` fully idle time units
// (idle < 0 encodes "start of schedule": everything wakes fresh).
double step_cost(int m_prev, int m_new, std::int64_t idle, double alpha) {
  if (m_new == 0) return 0.0;
  double cost = static_cast<double>(m_new);  // active time at the new unit
  if (idle < 0) return cost + alpha * m_new;
  if (idle == 0) {
    return cost + alpha * std::max(0, m_new - m_prev);
  }
  const int carried = std::min(m_prev, m_new);
  const double carry_unit = std::min(static_cast<double>(idle), alpha);
  return cost + carried * carry_unit + alpha * (m_new - carried);
}

}  // namespace

ExactPowerResult brute_force_min_power(const Instance& inst, double alpha) {
  assert(inst.n() <= 20 && "brute force is exponential in n");
  assert(alpha >= 0.0);
  const int p = inst.processors;
  const std::size_t n = inst.n();
  if (n == 0) return ExactPowerResult{true, 0.0, Schedule(0)};
  const Mask full = (Mask{1} << n) - 1;

  const std::vector<Time> theta = candidate_times(inst);
  const std::size_t m = theta.size();

  std::vector<Mask> avail(m, 0), last_chance(m, 0);
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t last = m;
    for (std::size_t i = 0; i < m; ++i) {
      if (inst.jobs[j].allowed.contains(theta[i])) {
        avail[i] |= Mask{1} << j;
        last = i;
      }
    }
    if (last == m) return {};
    last_chance[last] |= Mask{1} << j;
  }

  std::vector<std::unordered_map<std::uint64_t, Entry>> layers(m + 1);
  layers[0][key_of(0, 0, p)] = Entry{0.0, 0, 0, 0};

  for (std::size_t i = 0; i < m; ++i) {
    const std::int64_t idle = (i == 0) ? -1 : theta[i] - theta[i - 1] - 1;
    for (const auto& [key, entry] : layers[i]) {
      const Mask mask =
          static_cast<Mask>(key / static_cast<std::uint64_t>(p + 1));
      const int active =
          static_cast<int>(key % static_cast<std::uint64_t>(p + 1));
      const Mask candidates = avail[i] & ~mask;
      const Mask must = last_chance[i] & ~mask;
      if ((must & ~candidates) != 0) continue;
      if (std::popcount(must) > p) continue;
      const Mask optional_bits = candidates & ~must;
      for (Mask sub = optional_bits;; sub = (sub - 1) & optional_bits) {
        const Mask s = sub | must;
        const int cnt = std::popcount(s);
        if (cnt <= p) {
          // Choose how many processors stay/become active here (>= cnt;
          // extra active-but-idle processors may pay off by bridging).
          for (int m_new = cnt; m_new <= p; ++m_new) {
            const double step = step_cost(active, m_new, idle, alpha);
            const std::uint64_t nk = key_of(mask | s, m_new, p);
            Entry& slot = layers[i + 1][nk];
            if (entry.cost + step < slot.cost) {
              slot = Entry{entry.cost + step, mask, active, s};
            }
          }
        }
        if (sub == 0) break;
      }
    }
  }

  double best = std::numeric_limits<double>::infinity();
  int best_active = -1;
  for (int a = 0; a <= p; ++a) {
    auto it = layers[m].find(key_of(full, a, p));
    if (it != layers[m].end() && it->second.cost < best) {
      best = it->second.cost;
      best_active = a;
    }
  }
  if (best_active < 0) return {};

  Schedule sched(n);
  Mask mask = full;
  int active = best_active;
  for (std::size_t i = m; i > 0; --i) {
    const Entry& e = layers[i].at(key_of(mask, active, p));
    Mask s = e.chosen;
    while (s != 0) {
      const int j = std::countr_zero(s);
      sched.place(static_cast<std::size_t>(j), theta[i - 1]);
      s &= s - 1;
    }
    mask = e.parent_mask;
    active = e.parent_active;
  }
  sched.assign_processors_staircase();
  return ExactPowerResult{true, best, std::move(sched)};
}

}  // namespace gapsched

#include "gapsched/exact/span_search.hpp"

#include <algorithm>

#include "gapsched/matching/feasibility.hpp"

namespace gapsched {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

// Incremental time->job matcher with snapshot-based rollback: push a time
// unit (augment), pop by restoring the saved matching.
class IncrementalFill {
 public:
  explicit IncrementalFill(const Instance& inst) : inst_(inst) {
    match_job_.assign(inst.n(), kNone);
  }

  /// Tries to assign time t a distinct job. On success the time is pushed;
  /// on failure the state is unchanged.
  bool push(Time t) {
    snapshots_.push_back(match_job_);
    times_.push_back(t);
    std::vector<char> visited(inst_.n(), 0);
    if (augment(static_cast<std::size_t>(times_.size()) - 1, visited)) {
      return true;
    }
    match_job_ = std::move(snapshots_.back());
    snapshots_.pop_back();
    times_.pop_back();
    return false;
  }

  void pop() {
    match_job_ = std::move(snapshots_.back());
    snapshots_.pop_back();
    times_.pop_back();
  }

  /// job -> position in the pushed time list (kNone when unmatched).
  const std::vector<std::size_t>& job_positions() const { return match_job_; }
  const std::vector<Time>& times() const { return times_; }

 private:
  bool augment(std::size_t pos, std::vector<char>& visited) {
    const Time t = times_[pos];
    for (std::size_t j = 0; j < inst_.n(); ++j) {
      if (visited[j] || !inst_.jobs[j].allowed.contains(t)) continue;
      visited[j] = 1;
      if (match_job_[j] == kNone || augment(match_job_[j], visited)) {
        match_job_[j] = pos;
        return true;
      }
    }
    return false;
  }

  const Instance& inst_;
  std::vector<std::size_t> match_job_;  // job -> time position
  std::vector<Time> times_;
  std::vector<std::vector<std::size_t>> snapshots_;
};

class Searcher {
 public:
  explicit Searcher(const Instance& inst)
      : inst_(inst), fill_(inst) {
    const SlotSpace slots = make_slot_space(inst);
    vt_ = slots.slot_times;
    // run_end_[i]: last slot index of the consecutive-time run containing i.
    run_end_.resize(vt_.size());
    for (std::size_t i = vt_.size(); i-- > 0;) {
      if (i + 1 < vt_.size() && vt_[i + 1] == vt_[i] + 1) {
        run_end_[i] = run_end_[i + 1];
      } else {
        run_end_[i] = i;
      }
    }
  }

  bool solve_with(std::size_t spans) {
    spans_budget_ = spans;
    return dfs(0, spans, inst_.n());
  }

  Schedule extract_schedule() const {
    Schedule s(inst_.n());
    const auto& pos = fill_.job_positions();
    for (std::size_t j = 0; j < inst_.n(); ++j) {
      if (pos[j] != kNone) s.place(j, fill_.times()[pos[j]], 0);
    }
    return s;
  }

  std::size_t nodes() const { return nodes_; }

 private:
  // Place `remaining` jobs into at most `spans_left` spans starting at slot
  // index >= from.
  bool dfs(std::size_t from, std::size_t spans_left, std::size_t remaining) {
    ++nodes_;
    if (remaining == 0) return true;
    if (spans_left == 0 || from >= vt_.size()) return false;
    // Capacity bound: even maximal spans cannot host the remaining jobs.
    if (spans_left * vt_.size() < remaining) return false;

    for (std::size_t a = from; a < vt_.size(); ++a) {
      // Span starting exactly at slot a.
      const std::size_t max_end = run_end_[a];
      std::size_t pushed = 0;
      for (std::size_t b = a; b <= max_end && pushed < remaining; ++b) {
        if (!fill_.push(vt_[b])) break;  // longer spans only harder
        ++pushed;
        // Next span must start after a >= 1 unit idle gap.
        std::size_t next = b + 1;
        while (next < vt_.size() && vt_[next] <= vt_[b] + 1) ++next;
        if (dfs(next, spans_left - 1, remaining - pushed)) return true;
      }
      for (std::size_t i = 0; i < pushed; ++i) fill_.pop();
    }
    return false;
  }

  const Instance& inst_;
  IncrementalFill fill_;
  std::vector<Time> vt_;
  std::vector<std::size_t> run_end_;
  std::size_t spans_budget_ = 0;
  std::size_t nodes_ = 0;
};

}  // namespace

SpanSearchResult span_search_min_transitions(const Instance& inst) {
  Instance single = inst;
  single.processors = 1;
  SpanSearchResult out;
  if (single.n() == 0) {
    out.feasible = true;
    out.schedule = Schedule(0);
    return out;
  }
  if (!is_feasible(single)) {
    out.schedule = Schedule(single.n());
    return out;
  }
  for (std::size_t t = 1; t <= single.n(); ++t) {
    Searcher searcher(single);
    if (searcher.solve_with(t)) {
      out.feasible = true;
      out.transitions = static_cast<std::int64_t>(t);
      out.schedule = searcher.extract_schedule();
      out.nodes = searcher.nodes();
      return out;
    }
    out.nodes += searcher.nodes();
  }
  // Unreachable for feasible instances: n singleton spans always work.
  out.schedule = Schedule(single.n());
  return out;
}

}  // namespace gapsched

#include "gapsched/exact/brute_force.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <unordered_map>
#include <vector>

#include "gapsched/core/candidate_times.hpp"

namespace gapsched {

namespace {

using Mask = std::uint32_t;

struct Entry {
  std::int64_t cost = std::numeric_limits<std::int64_t>::max();
  Mask parent_mask = 0;
  int parent_prev = 0;
  Mask chosen = 0;  // subset scheduled at this layer's time
};

// State key within one layer: mask * (p+1) + prev_occupancy.
std::uint64_t key_of(Mask mask, int prev, int p) {
  return static_cast<std::uint64_t>(mask) * static_cast<std::uint64_t>(p + 1) +
         static_cast<std::uint64_t>(prev);
}

}  // namespace

ExactGapResult brute_force_min_transitions(const Instance& inst) {
  assert(inst.n() <= 20 && "brute force is exponential in n");
  const int p = inst.processors;
  const std::size_t n = inst.n();
  if (n == 0) return ExactGapResult{true, 0, Schedule(0)};
  const Mask full = (Mask{1} << n) - 1;

  const std::vector<Time> theta = candidate_times(inst);
  const std::size_t m = theta.size();

  // avail[i] = jobs allowed to run at theta[i];
  // last_chance[i] = jobs whose last allowed candidate time is theta[i].
  std::vector<Mask> avail(m, 0), last_chance(m, 0);
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t last = m;
    for (std::size_t i = 0; i < m; ++i) {
      if (inst.jobs[j].allowed.contains(theta[i])) {
        avail[i] |= Mask{1} << j;
        last = i;
      }
    }
    if (last == m) return {};  // no candidate time at all: infeasible
    last_chance[last] |= Mask{1} << j;
  }

  // layers[i]: states after processing theta[0..i-1].
  std::vector<std::unordered_map<std::uint64_t, Entry>> layers(m + 1);
  layers[0][key_of(0, 0, p)] = Entry{0, 0, 0, 0};

  for (std::size_t i = 0; i < m; ++i) {
    const bool adjacent = i > 0 && theta[i] == theta[i - 1] + 1;
    for (const auto& [key, entry] : layers[i]) {
      const Mask mask =
          static_cast<Mask>(key / static_cast<std::uint64_t>(p + 1));
      const int prev = static_cast<int>(key % static_cast<std::uint64_t>(p + 1));
      const Mask candidates = avail[i] & ~mask;
      const Mask must = last_chance[i] & ~mask;
      if ((must & ~candidates) != 0) continue;  // a dying job is unavailable
      if (std::popcount(must) > p) continue;    // too many forced jobs
      // Enumerate subsets S with must <= S <= candidates, |S| <= p.
      const Mask optional_bits = candidates & ~must;
      for (Mask sub = optional_bits;; sub = (sub - 1) & optional_bits) {
        const Mask s = sub | must;
        const int cnt = std::popcount(s);
        if (cnt <= p) {
          const std::int64_t step = adjacent ? std::max(0, cnt - prev) : cnt;
          const std::uint64_t nk = key_of(mask | s, cnt, p);
          Entry& slot = layers[i + 1][nk];
          if (entry.cost + step < slot.cost) {
            slot = Entry{entry.cost + step, mask, prev, s};
          }
        }
        if (sub == 0) break;
      }
    }
  }

  // Best final state over any ending occupancy.
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  int best_prev = -1;
  for (int prev = 0; prev <= p; ++prev) {
    auto it = layers[m].find(key_of(full, prev, p));
    if (it != layers[m].end() && it->second.cost < best) {
      best = it->second.cost;
      best_prev = prev;
    }
  }
  if (best_prev < 0) return {};

  // Reconstruct by walking parent pointers backwards through the layers.
  Schedule sched(n);
  Mask mask = full;
  int prev = best_prev;
  for (std::size_t i = m; i > 0; --i) {
    const Entry& e = layers[i].at(key_of(mask, prev, p));
    Mask s = e.chosen;
    while (s != 0) {
      const int j = std::countr_zero(s);
      sched.place(static_cast<std::size_t>(j), theta[i - 1]);
      s &= s - 1;
    }
    mask = e.parent_mask;
    prev = e.parent_prev;
  }
  sched.assign_processors_staircase();
  return ExactGapResult{true, best, std::move(sched)};
}

}  // namespace gapsched

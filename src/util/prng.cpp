#include "gapsched/util/prng.hpp"

namespace gapsched {

std::int64_t Prng::uniform(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Prng::uniform01() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Prng::chance(double p) { return uniform01() < p; }

std::size_t Prng::index(std::size_t n) {
  return static_cast<std::size_t>(
      uniform(0, static_cast<std::int64_t>(n) - 1));
}

Prng Prng::fork() {
  // Mix the parent stream into a fresh seed; golden-ratio increment keeps
  // sibling forks decorrelated even when the parent output is small.
  std::uint64_t child = engine_() * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL;
  return Prng(child);
}

}  // namespace gapsched

#include "gapsched/util/stopwatch.hpp"

// Header-only today; translation unit kept so the module has a stable home
// for future non-inline additions (e.g. CPU-time clocks).

#include "gapsched/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace gapsched {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }

Table& Table::add(std::size_t v) { return add(std::to_string(v)); }

Table& Table::add(int v) { return add(std::to_string(v)); }

Table& Table::add(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return add(std::string(buf));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << r[c];
      if (c + 1 < r.size()) {
        os << std::string(width[c] - r[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << r[c];
      if (c + 1 < r.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace gapsched

#include "gapsched/io/csv.hpp"

#include <fstream>

namespace gapsched {

bool write_csv(const std::string& path, const Table& table) {
  std::ofstream os(path);
  if (!os) return false;
  table.print_csv(os);
  return static_cast<bool>(os);
}

}  // namespace gapsched

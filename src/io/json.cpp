#include "gapsched/io/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>
#include <vector>

namespace gapsched::io {

namespace {

// --------------------------------------------------------------- writing --

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";  // JSON has no NaN/inf
    return;
  }
  // Shortest decimal form that round-trips.
  for (int prec = 1; prec <= 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", prec, value);
    if (std::strtod(probe, nullptr) == value) {
      out += probe;
      return;
    }
  }
}

void append_bool(std::string& out, bool value) {
  out += value ? "true" : "false";
}

// --------------------------------------------------------------- parsing --

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::int64_t integer = 0;
  bool is_integer = false;
  std::string string;
  std::vector<JsonValue> elements;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Minimal recursive-descent parser for standard JSON (no comments, no
/// trailing commas). Depth-limited so adversarial input cannot blow the
/// stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue v;
    if (!value(v, 0)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = at("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:

  std::string at(std::string msg) {
    return msg + " (at byte " + std::to_string(pos_) + ")";
  }

  bool fail(std::string msg) {
    if (error_.empty()) error_ = at(std::move(msg));
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out, int depth) {
    // depth counts nesting levels already entered, so the value being
    // parsed sits at nesting level depth + 1: reject exactly the
    // documents nested deeper than kMaxParseDepth.
    if (depth >= kMaxParseDepth) return fail("document nested too deeply");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    const char c = text_[pos_];
    if (c == '{') return object(out, depth);
    if (c == '[') return array(out, depth);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string(out.string);
    }
    if (c == 't') {
      if (!literal("true")) return fail("bad literal");
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return fail("bad literal");
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (c == 'n') {
      if (!literal("null")) return fail("bad literal");
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    return number(out);
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number");
    if (integral) {
      errno = 0;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        out.integer = v;
        out.is_integer = true;
      }
    }
    return true;
  }

  bool string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // The engine documents are ASCII; anything else degrades to '?'.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected an object key");
      }
      std::string key;
      if (!string(key)) return false;
      // Duplicate keys make a document ambiguous (which value wins depends
      // on the reader); the wire format rejects them outright so mutated
      // or hand-built input can never smuggle a second "cost" past the
      // first.
      if (out.find(key) != nullptr) {
        return fail("duplicate object key '" + key + "'");
      }
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      JsonValue member;
      if (!value(member, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out, int depth) {
    ++pos_;  // '['
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!value(element, depth + 1)) return false;
      out.elements.push_back(std::move(element));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ----------------------------------------------- typed field extraction --

bool get_bool(const JsonValue& obj, std::string_view key, bool* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kBool) return v == nullptr;
  *out = v->boolean;
  return true;
}

bool get_double(const JsonValue& obj, std::string_view key, double* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (v->kind != JsonValue::Kind::kNumber) return false;
  *out = v->number;
  return true;
}

bool get_int(const JsonValue& obj, std::string_view key, std::int64_t* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (v->kind != JsonValue::Kind::kNumber || !v->is_integer) return false;
  *out = v->integer;
  return true;
}

bool get_string(const JsonValue& obj, std::string_view key, std::string* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (v->kind != JsonValue::Kind::kString) return false;
  *out = v->string;
  return true;
}

/// True when `v` narrows to int without truncation — out-of-range wire
/// input must be a parse error, never a plausible-looking wrong value.
bool fits_int(std::int64_t v) {
  return v >= std::numeric_limits<int>::min() &&
         v <= std::numeric_limits<int>::max();
}

bool parse_params(const JsonValue& obj, engine::SolveParams* params,
                  std::string* why) {
  const JsonValue* p = obj.find("params");
  if (p == nullptr) return true;  // all defaults
  if (p->kind != JsonValue::Kind::kObject) {
    *why = "'params' must be an object";
    return false;
  }
  std::int64_t max_spans = static_cast<std::int64_t>(params->max_spans);
  std::int64_t swap_size = params->swap_size;
  std::int64_t block_size = params->block_size;
  const bool ok = get_double(*p, "alpha", &params->alpha) &&
                  get_int(*p, "max_spans", &max_spans) &&
                  get_double(*p, "powerdown_threshold",
                             &params->powerdown_threshold) &&
                  get_int(*p, "swap_size", &swap_size) &&
                  get_int(*p, "block_size", &block_size) &&
                  get_double(*p, "time_limit_s", &params->time_limit_s) &&
                  get_bool(*p, "validate", &params->validate) &&
                  get_bool(*p, "decompose", &params->decompose) &&
                  get_bool(*p, "compress", &params->compress);
  if (!ok || max_spans < 0 || !fits_int(swap_size) || !fits_int(block_size)) {
    *why = "malformed 'params' field";
    return false;
  }
  params->max_spans = static_cast<std::size_t>(max_spans);
  params->swap_size = static_cast<int>(swap_size);
  params->block_size = static_cast<int>(block_size);
  return true;
}

bool parse_instance(const JsonValue& obj, Instance* inst, std::string* why) {
  const JsonValue* in = obj.find("instance");
  if (in == nullptr || in->kind != JsonValue::Kind::kObject) {
    *why = "missing 'instance' object";
    return false;
  }
  std::int64_t processors = 1;
  if (!get_int(*in, "processors", &processors) || !fits_int(processors)) {
    *why = "malformed 'processors'";
    return false;
  }
  inst->processors = static_cast<int>(processors);
  const JsonValue* jobs = in->find("jobs");
  if (jobs == nullptr || jobs->kind != JsonValue::Kind::kArray) {
    *why = "missing 'jobs' array";
    return false;
  }
  inst->jobs.clear();
  inst->jobs.reserve(jobs->elements.size());
  for (const JsonValue& job : jobs->elements) {
    if (job.kind != JsonValue::Kind::kArray) {
      *why = "each job must be an array of [lo, hi] intervals";
      return false;
    }
    std::vector<Interval> intervals;
    intervals.reserve(job.elements.size());
    for (const JsonValue& iv : job.elements) {
      if (iv.kind != JsonValue::Kind::kArray || iv.elements.size() != 2 ||
          !iv.elements[0].is_integer || !iv.elements[1].is_integer) {
        *why = "each interval must be an integer pair [lo, hi]";
        return false;
      }
      intervals.push_back(Interval{iv.elements[0].integer,
                                   iv.elements[1].integer});
    }
    inst->jobs.push_back(Job{TimeSet(std::move(intervals))});
  }
  return true;
}

// ------------------------------------------------- stats sub-documents --
// Bare (untagged) writers/readers shared by the standalone documents and
// the nested copies inside a server_stats document.

void append_cache_stats(std::string& out, const engine::CacheStats& s) {
  out += "{ \"hits\": " + std::to_string(s.hits);
  out += ", \"misses\": " + std::to_string(s.misses);
  out += ", \"insertions\": " + std::to_string(s.insertions);
  out += ", \"evictions\": " + std::to_string(s.evictions);
  out += ", \"entries\": " + std::to_string(s.entries);
  out += ", \"capacity\": " + std::to_string(s.capacity);
  out += ", \"disk_hits\": " + std::to_string(s.disk_hits);
  out += ", \"disk_rejects\": " + std::to_string(s.disk_rejects);
  out += ", \"spilled\": " + std::to_string(s.spilled);
  out += ", \"disk_entries\": " + std::to_string(s.disk_entries);
  out += " }";
}

bool read_cache_stats(const JsonValue& obj, engine::CacheStats* out,
                      std::string* why) {
  std::int64_t hits = 0, misses = 0, insertions = 0, evictions = 0;
  std::int64_t entries = 0, capacity = 0;
  std::int64_t disk_hits = 0, disk_rejects = 0, spilled = 0, disk_entries = 0;
  if (!get_int(obj, "hits", &hits) || !get_int(obj, "misses", &misses) ||
      !get_int(obj, "insertions", &insertions) ||
      !get_int(obj, "evictions", &evictions) ||
      !get_int(obj, "entries", &entries) ||
      !get_int(obj, "capacity", &capacity) ||
      !get_int(obj, "disk_hits", &disk_hits) ||
      !get_int(obj, "disk_rejects", &disk_rejects) ||
      !get_int(obj, "spilled", &spilled) ||
      !get_int(obj, "disk_entries", &disk_entries) || hits < 0 ||
      misses < 0 || insertions < 0 || evictions < 0 || entries < 0 ||
      capacity < 0 || disk_hits < 0 || disk_rejects < 0 || spilled < 0 ||
      disk_entries < 0) {
    *why = "malformed cache stats field";
    return false;
  }
  out->hits = static_cast<std::size_t>(hits);
  out->misses = static_cast<std::size_t>(misses);
  out->insertions = static_cast<std::size_t>(insertions);
  out->evictions = static_cast<std::size_t>(evictions);
  out->entries = static_cast<std::size_t>(entries);
  out->capacity = static_cast<std::size_t>(capacity);
  out->disk_hits = static_cast<std::size_t>(disk_hits);
  out->disk_rejects = static_cast<std::size_t>(disk_rejects);
  out->spilled = static_cast<std::size_t>(spilled);
  out->disk_entries = static_cast<std::size_t>(disk_entries);
  return true;
}

void append_pipeline_stats(std::string& out,
                           const engine::pipeline::PipelineStats& p) {
  out += "{ \"requests\": " + std::to_string(p.requests);
  out += ", \"stages\": {";
  for (std::size_t i = 0; i < engine::kPipelineStageCount; ++i) {
    const engine::pipeline::StageTally& t = p.stages[i];
    out += i == 0 ? " \"" : ", \"";
    out += std::string(
        engine::to_string(static_cast<engine::PipelineStage>(i)));
    out += "\": { \"runs\": " + std::to_string(t.runs);
    out += ", \"skips\": " + std::to_string(t.skips);
    out += ", \"total_ms\": ";
    append_double(out, t.total_ms);
    out += " }";
  }
  out += " } }";
}

bool read_pipeline_stats(const JsonValue& obj,
                         engine::pipeline::PipelineStats* out,
                         std::string* why) {
  std::int64_t requests = 0;
  if (!get_int(obj, "requests", &requests) || requests < 0) {
    *why = "malformed 'requests' field";
    return false;
  }
  out->requests = static_cast<std::uint64_t>(requests);
  const JsonValue* stages = obj.find("stages");
  if (stages == nullptr) return true;  // tolerated: tallies stay zero
  if (stages->kind != JsonValue::Kind::kObject) {
    *why = "'stages' must be an object";
    return false;
  }
  for (const auto& [name, entry] : stages->members) {
    const auto stage = engine::pipeline_stage_from_string(name);
    if (!stage.has_value()) {
      *why = "unknown pipeline stage '" + name + "'";
      return false;
    }
    engine::pipeline::StageTally& t =
        out->stages[static_cast<std::size_t>(*stage)];
    std::int64_t runs = 0, skips = 0;
    if (entry.kind != JsonValue::Kind::kObject ||
        !get_int(entry, "runs", &runs) || !get_int(entry, "skips", &skips) ||
        !get_double(entry, "total_ms", &t.total_ms) || runs < 0 ||
        skips < 0) {
      *why = "malformed stage tally '" + name + "'";
      return false;
    }
    t.runs = static_cast<std::uint64_t>(runs);
    t.skips = static_cast<std::uint64_t>(skips);
  }
  return true;
}

}  // namespace

std::string request_to_json(std::string_view solver,
                            const engine::SolveRequest& request) {
  const engine::SolveParams& p = request.params;
  std::string out;
  out += "{\n  \"gapsched\": \"request\",\n  \"solver\": ";
  append_escaped(out, solver);
  out += ",\n  \"objective\": ";
  append_escaped(out, engine::to_string(request.objective));
  out += ",\n  \"params\": {\n    \"alpha\": ";
  append_double(out, p.alpha);
  out += ",\n    \"max_spans\": " + std::to_string(p.max_spans);
  out += ",\n    \"powerdown_threshold\": ";
  append_double(out, p.powerdown_threshold);
  out += ",\n    \"swap_size\": " + std::to_string(p.swap_size);
  out += ",\n    \"block_size\": " + std::to_string(p.block_size);
  out += ",\n    \"time_limit_s\": ";
  append_double(out, p.time_limit_s);
  out += ",\n    \"validate\": ";
  append_bool(out, p.validate);
  out += ",\n    \"decompose\": ";
  append_bool(out, p.decompose);
  out += ",\n    \"compress\": ";
  append_bool(out, p.compress);
  out += "\n  },\n  \"instance\": {\n    \"processors\": " +
         std::to_string(request.instance.processors);
  out += ",\n    \"jobs\": [";
  for (std::size_t j = 0; j < request.instance.n(); ++j) {
    out += j == 0 ? "\n" : ",\n";
    out += "      [";
    const TimeSet& allowed = request.instance.jobs[j].allowed;
    for (std::size_t k = 0; k < allowed.intervals().size(); ++k) {
      if (k > 0) out += ", ";
      const Interval& iv = allowed.intervals()[k];
      out += '[' + std::to_string(iv.lo) + ", " + std::to_string(iv.hi) + ']';
    }
    out += ']';
  }
  out += request.instance.n() == 0 ? "]\n" : "\n    ]\n";
  out += "  }\n}";
  return out;
}

std::optional<engine::SolveRequest> request_from_json(std::string_view text,
                                                      std::string* solver,
                                                      std::string* error) {
  Parser parser(text);
  std::optional<JsonValue> doc = parser.parse(error);
  if (!doc.has_value()) return std::nullopt;
  if (doc->kind != JsonValue::Kind::kObject) {
    if (error != nullptr) *error = "request document must be an object";
    return std::nullopt;
  }
  std::string why;
  std::string solver_name;
  if (!get_string(*doc, "solver", &solver_name) || solver_name.empty()) {
    if (error != nullptr) *error = "missing 'solver' field";
    return std::nullopt;
  }
  engine::SolveRequest request;
  std::string objective_name;
  if (!get_string(*doc, "objective", &objective_name)) {
    if (error != nullptr) *error = "malformed 'objective'";
    return std::nullopt;
  }
  if (!objective_name.empty()) {
    const auto obj = engine::objective_from_string(objective_name);
    if (!obj.has_value()) {
      if (error != nullptr) *error = "unknown objective '" + objective_name + "'";
      return std::nullopt;
    }
    request.objective = *obj;
  }
  if (!parse_params(*doc, &request.params, &why) ||
      !parse_instance(*doc, &request.instance, &why)) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  }
  if (solver != nullptr) *solver = std::move(solver_name);
  return request;
}

std::string result_to_json(const engine::SolveResult& result) {
  std::string out;
  out += "{\n  \"gapsched\": \"result\",\n  \"ok\": ";
  append_bool(out, result.ok);
  out += ",\n  \"error\": ";
  append_escaped(out, result.error);
  out += ",\n  \"feasible\": ";
  append_bool(out, result.feasible);
  out += ",\n  \"cost\": ";
  append_double(out, result.cost);
  out += ",\n  \"transitions\": " + std::to_string(result.transitions);
  out += ",\n  \"timed_out\": ";
  append_bool(out, result.timed_out);
  out += ",\n  \"audited\": ";
  append_bool(out, result.audited);
  out += ",\n  \"audit_error\": ";
  append_escaped(out, result.audit_error);
  const engine::SolveStats& s = result.stats;
  out += ",\n  \"stats\": {\n    \"wall_ms\": ";
  append_double(out, s.wall_ms);
  out += ",\n    \"states\": " + std::to_string(s.states);
  out += ",\n    \"nodes\": " + std::to_string(s.nodes);
  out += ",\n    \"scheduled\": " + std::to_string(s.scheduled);
  out += ",\n    \"components\": " + std::to_string(s.components);
  out += ",\n    \"cache_hit\": ";
  append_bool(out, s.cache_hit);
  out += ",\n    \"component_cache_hits\": " +
         std::to_string(s.component_cache_hits);
  out += ",\n    \"components_deduped\": " +
         std::to_string(s.components_deduped);
  out += ",\n    \"dead_time_removed\": " +
         std::to_string(s.dead_time_removed);
  out += ",\n    \"memo_arena_solves\": " + std::to_string(s.memo_arena_solves);
  out += ",\n    \"memo_hash_solves\": " + std::to_string(s.memo_hash_solves);
  out += ",\n    \"memo_parallel_solves\": " +
         std::to_string(s.memo_parallel_solves);
  out += ",\n    \"memo_find_calls\": " + std::to_string(s.memo_find_calls);
  out += ",\n    \"memo_probe_steps\": " + std::to_string(s.memo_probe_steps);
  out += ",\n    \"memo_pruned\": " + std::to_string(s.memo_pruned);
  out += ",\n    \"stages\": {";
  for (std::size_t i = 0; i < engine::kPipelineStageCount; ++i) {
    const engine::StageStats& st = s.stages[i];
    out += i == 0 ? "\n      \"" : ",\n      \"";
    out += std::string(
        engine::to_string(static_cast<engine::PipelineStage>(i)));
    out += "\": { \"ran\": ";
    append_bool(out, st.ran);
    out += ", \"ms\": ";
    append_double(out, st.ms);
    out += " }";
  }
  out += "\n    }";
  out += "\n  },\n  \"schedule\": {\n    \"jobs\": " +
         std::to_string(result.schedule.size());
  out += ",\n    \"slots\": [";
  bool first = true;
  for (std::size_t j = 0; j < result.schedule.size(); ++j) {
    const std::optional<Placement>& slot = result.schedule.at(j);
    if (!slot.has_value()) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "      { \"job\": " + std::to_string(j) +
           ", \"time\": " + std::to_string(slot->time) +
           ", \"processor\": " + std::to_string(slot->processor) + " }";
  }
  out += first ? "]\n" : "\n    ]\n";
  out += "  }\n}";
  return out;
}

std::optional<engine::SolveResult> result_from_json(std::string_view text,
                                                    std::string* error) {
  Parser parser(text);
  std::optional<JsonValue> doc = parser.parse(error);
  if (!doc.has_value()) return std::nullopt;
  if (doc->kind != JsonValue::Kind::kObject) {
    if (error != nullptr) *error = "result document must be an object";
    return std::nullopt;
  }
  engine::SolveResult result;
  std::int64_t transitions = 0;
  const bool ok = get_bool(*doc, "ok", &result.ok) &&
                  get_string(*doc, "error", &result.error) &&
                  get_bool(*doc, "feasible", &result.feasible) &&
                  get_double(*doc, "cost", &result.cost) &&
                  get_int(*doc, "transitions", &transitions) &&
                  get_bool(*doc, "timed_out", &result.timed_out) &&
                  get_bool(*doc, "audited", &result.audited) &&
                  get_string(*doc, "audit_error", &result.audit_error);
  if (!ok) {
    if (error != nullptr) *error = "malformed result field";
    return std::nullopt;
  }
  result.transitions = transitions;
  if (const JsonValue* s = doc->find("stats");
      s != nullptr && s->kind == JsonValue::Kind::kObject) {
    std::int64_t states = 0, nodes = 0, scheduled = 0, components = 0;
    std::int64_t comp_hits = 0, deduped = 0;
    std::int64_t memo_arena = 0, memo_hash = 0, memo_parallel = 0;
    std::int64_t memo_finds = 0, memo_probes = 0, memo_pruned = 0;
    if (!get_double(*s, "wall_ms", &result.stats.wall_ms) ||
        !get_int(*s, "states", &states) || !get_int(*s, "nodes", &nodes) ||
        !get_int(*s, "scheduled", &scheduled) ||
        !get_int(*s, "components", &components) ||
        !get_bool(*s, "cache_hit", &result.stats.cache_hit) ||
        !get_int(*s, "component_cache_hits", &comp_hits) ||
        !get_int(*s, "components_deduped", &deduped) ||
        !get_int(*s, "dead_time_removed", &result.stats.dead_time_removed) ||
        !get_int(*s, "memo_arena_solves", &memo_arena) ||
        !get_int(*s, "memo_hash_solves", &memo_hash) ||
        !get_int(*s, "memo_parallel_solves", &memo_parallel) ||
        !get_int(*s, "memo_find_calls", &memo_finds) ||
        !get_int(*s, "memo_probe_steps", &memo_probes) ||
        !get_int(*s, "memo_pruned", &memo_pruned)) {
      if (error != nullptr) *error = "malformed 'stats' field";
      return std::nullopt;
    }
    result.stats.states = static_cast<std::size_t>(states);
    result.stats.nodes = static_cast<std::size_t>(nodes);
    result.stats.scheduled = static_cast<std::size_t>(scheduled);
    result.stats.components = static_cast<std::size_t>(components);
    result.stats.component_cache_hits = static_cast<std::size_t>(comp_hits);
    result.stats.components_deduped = static_cast<std::size_t>(deduped);
    result.stats.memo_arena_solves = static_cast<std::size_t>(memo_arena);
    result.stats.memo_hash_solves = static_cast<std::size_t>(memo_hash);
    result.stats.memo_parallel_solves =
        static_cast<std::size_t>(memo_parallel);
    result.stats.memo_find_calls = static_cast<std::uint64_t>(memo_finds);
    result.stats.memo_probe_steps = static_cast<std::uint64_t>(memo_probes);
    result.stats.memo_pruned = static_cast<std::uint64_t>(memo_pruned);
    if (const JsonValue* stages = s->find("stages"); stages != nullptr) {
      if (stages->kind != JsonValue::Kind::kObject) {
        if (error != nullptr) *error = "'stats.stages' must be an object";
        return std::nullopt;
      }
      for (const auto& [name, entry] : stages->members) {
        const auto stage = engine::pipeline_stage_from_string(name);
        if (!stage.has_value()) {
          if (error != nullptr) {
            *error = "unknown pipeline stage '" + name + "'";
          }
          return std::nullopt;
        }
        engine::StageStats& st =
            result.stats.stages[static_cast<std::size_t>(*stage)];
        if (entry.kind != JsonValue::Kind::kObject ||
            !get_bool(entry, "ran", &st.ran) ||
            !get_double(entry, "ms", &st.ms)) {
          if (error != nullptr) {
            *error = "malformed stage entry '" + name + "'";
          }
          return std::nullopt;
        }
      }
    }
  }
  if (const JsonValue* sched = doc->find("schedule");
      sched != nullptr && sched->kind == JsonValue::Kind::kObject) {
    std::int64_t n = 0;
    if (!get_int(*sched, "jobs", &n) || n < 0) {
      if (error != nullptr) *error = "malformed 'schedule.jobs'";
      return std::nullopt;
    }
    Schedule schedule(static_cast<std::size_t>(n));
    const JsonValue* slots = sched->find("slots");
    if (slots != nullptr) {
      if (slots->kind != JsonValue::Kind::kArray) {
        if (error != nullptr) *error = "'schedule.slots' must be an array";
        return std::nullopt;
      }
      for (const JsonValue& slot : slots->elements) {
        std::int64_t job = -1, time = 0, processor = Placement::kUnassigned;
        if (slot.kind != JsonValue::Kind::kObject ||
            !get_int(slot, "job", &job) || !get_int(slot, "time", &time) ||
            !get_int(slot, "processor", &processor) || job < 0 || job >= n ||
            !fits_int(processor)) {
          if (error != nullptr) *error = "malformed schedule slot";
          return std::nullopt;
        }
        schedule.place(static_cast<std::size_t>(job), time,
                       static_cast<int>(processor));
      }
    }
    result.schedule = std::move(schedule);
  }
  return result;
}

std::string cache_stats_to_json(const engine::CacheStats& stats) {
  std::string out = "{ \"gapsched\": \"cache_stats\", ";
  std::string body;
  append_cache_stats(body, stats);
  out += body.substr(2);  // splice past the bare writer's "{ "
  return out;
}

std::optional<engine::CacheStats> cache_stats_from_json(std::string_view text,
                                                        std::string* error) {
  Parser parser(text);
  std::optional<JsonValue> doc = parser.parse(error);
  if (!doc.has_value()) return std::nullopt;
  std::string why = "cache stats document must be an object";
  engine::CacheStats stats;
  if (doc->kind == JsonValue::Kind::kObject &&
      read_cache_stats(*doc, &stats, &why)) {
    return stats;
  }
  if (error != nullptr) *error = why;
  return std::nullopt;
}

std::string pipeline_stats_to_json(
    const engine::pipeline::PipelineStats& stats) {
  std::string out = "{ \"gapsched\": \"pipeline_stats\", ";
  std::string body;
  append_pipeline_stats(body, stats);
  out += body.substr(2);
  return out;
}

std::optional<engine::pipeline::PipelineStats> pipeline_stats_from_json(
    std::string_view text, std::string* error) {
  Parser parser(text);
  std::optional<JsonValue> doc = parser.parse(error);
  if (!doc.has_value()) return std::nullopt;
  std::string why = "pipeline stats document must be an object";
  engine::pipeline::PipelineStats stats;
  if (doc->kind == JsonValue::Kind::kObject &&
      read_pipeline_stats(*doc, &stats, &why)) {
    return stats;
  }
  if (error != nullptr) *error = why;
  return std::nullopt;
}

std::string server_stats_to_json(const ServerStatsWire& stats) {
  std::string out = "{ \"gapsched\": \"server_stats\", \"cache\": ";
  append_cache_stats(out, stats.cache);
  out += ", \"pipeline\": ";
  append_pipeline_stats(out, stats.pipeline);
  out += ", \"shards\": [";
  for (std::size_t i = 0; i < stats.shards.size(); ++i) {
    const ShardStatsWire& s = stats.shards[i];
    out += i == 0 ? " " : ", ";
    out += "{ \"shard\": " + std::to_string(s.shard);
    out += ", \"requests\": " + std::to_string(s.requests);
    out += ", \"rejected\": " + std::to_string(s.rejected);
    out += ", \"timed_out\": " + std::to_string(s.timed_out);
    out += ", \"refuted\": " + std::to_string(s.refuted);
    out += ", \"cache_hits\": " + std::to_string(s.cache_hits);
    out += ", \"component_cache_hits\": " +
           std::to_string(s.component_cache_hits);
    out += ", \"pipeline\": ";
    append_pipeline_stats(out, s.pipeline);
    out += " }";
  }
  out += stats.shards.empty() ? "] }" : " ] }";
  return out;
}

std::optional<ServerStatsWire> server_stats_from_json(std::string_view text,
                                                      std::string* error) {
  Parser parser(text);
  std::optional<JsonValue> doc = parser.parse(error);
  if (!doc.has_value()) return std::nullopt;
  if (doc->kind != JsonValue::Kind::kObject) {
    if (error != nullptr) *error = "server stats document must be an object";
    return std::nullopt;
  }
  ServerStatsWire stats;
  std::string why;
  if (const JsonValue* cache = doc->find("cache"); cache != nullptr) {
    if (cache->kind != JsonValue::Kind::kObject ||
        !read_cache_stats(*cache, &stats.cache, &why)) {
      if (error != nullptr) *error = "malformed 'cache' object";
      return std::nullopt;
    }
  }
  if (const JsonValue* pipe = doc->find("pipeline"); pipe != nullptr) {
    if (pipe->kind != JsonValue::Kind::kObject ||
        !read_pipeline_stats(*pipe, &stats.pipeline, &why)) {
      if (error != nullptr) *error = "malformed 'pipeline' object: " + why;
      return std::nullopt;
    }
  }
  const JsonValue* shards = doc->find("shards");
  if (shards == nullptr) return stats;  // tolerated: no per-shard view
  if (shards->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) *error = "'shards' must be an array";
    return std::nullopt;
  }
  for (const JsonValue& entry : shards->elements) {
    ShardStatsWire s;
    std::int64_t requests = 0, rejected = 0, timed_out = 0, refuted = 0;
    std::int64_t cache_hits = 0, component_hits = 0;
    if (entry.kind != JsonValue::Kind::kObject ||
        !get_int(entry, "shard", &s.shard) ||
        !get_int(entry, "requests", &requests) ||
        !get_int(entry, "rejected", &rejected) ||
        !get_int(entry, "timed_out", &timed_out) ||
        !get_int(entry, "refuted", &refuted) ||
        !get_int(entry, "cache_hits", &cache_hits) ||
        !get_int(entry, "component_cache_hits", &component_hits) ||
        s.shard < 0 || requests < 0 || rejected < 0 || timed_out < 0 ||
        refuted < 0 || cache_hits < 0 || component_hits < 0) {
      if (error != nullptr) *error = "malformed shard entry";
      return std::nullopt;
    }
    s.requests = static_cast<std::uint64_t>(requests);
    s.rejected = static_cast<std::uint64_t>(rejected);
    s.timed_out = static_cast<std::uint64_t>(timed_out);
    s.refuted = static_cast<std::uint64_t>(refuted);
    s.cache_hits = static_cast<std::uint64_t>(cache_hits);
    s.component_cache_hits = static_cast<std::uint64_t>(component_hits);
    if (const JsonValue* pipe = entry.find("pipeline"); pipe != nullptr) {
      if (pipe->kind != JsonValue::Kind::kObject ||
          !read_pipeline_stats(*pipe, &s.pipeline, &why)) {
        if (error != nullptr) *error = "malformed shard pipeline: " + why;
        return std::nullopt;
      }
    }
    stats.shards.push_back(std::move(s));
  }
  return stats;
}

std::optional<FrameHead> frame_head_from_json(std::string_view text,
                                              std::string* error) {
  Parser parser(text);
  std::optional<JsonValue> doc = parser.parse(error);
  if (!doc.has_value()) return std::nullopt;
  if (doc->kind != JsonValue::Kind::kObject) {
    if (error != nullptr) *error = "frame must be an object";
    return std::nullopt;
  }
  FrameHead head;
  if (!get_string(*doc, "frame", &head.frame) || head.frame.empty()) {
    if (error != nullptr) *error = "missing 'frame' field";
    return std::nullopt;
  }
  if (!get_int(*doc, "id", &head.id) ||
      !get_double(*doc, "deadline_ms", &head.deadline_ms) ||
      !get_string(*doc, "message", &head.message) || head.deadline_ms < 0.0 ||
      !std::isfinite(head.deadline_ms)) {
    if (error != nullptr) *error = "malformed frame header field";
    return std::nullopt;
  }
  return head;
}

}  // namespace gapsched::io

#include "gapsched/io/serialize.hpp"

#include <sstream>

namespace gapsched {

namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

// Reads the next non-comment, non-blank line.
bool next_line(std::istream& is, std::string* line) {
  while (std::getline(is, *line)) {
    const auto pos = line->find('#');
    if (pos != std::string::npos) line->resize(pos);
    bool blank = true;
    for (char c : *line) {
      if (!isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (!blank) return true;
  }
  return false;
}

}  // namespace

void write_instance(std::ostream& os, const Instance& inst) {
  os << "gapsched-instance v1\n";
  os << "processors " << inst.processors << "\n";
  os << "jobs " << inst.n() << "\n";
  for (const Job& j : inst.jobs) {
    os << "job " << j.allowed.interval_count();
    for (const Interval& iv : j.allowed.intervals()) {
      os << ' ' << iv.lo << ' ' << iv.hi;
    }
    os << "\n";
  }
}

std::string instance_to_string(const Instance& inst) {
  std::ostringstream os;
  write_instance(os, inst);
  return os.str();
}

std::optional<Instance> read_instance(std::istream& is, std::string* error) {
  std::string line;
  if (!next_line(is, &line) || line != "gapsched-instance v1") {
    fail(error, "missing gapsched-instance v1 header");
    return std::nullopt;
  }
  Instance inst;
  std::size_t n = 0;
  {
    std::string kw;
    if (!next_line(is, &line)) {
      fail(error, "missing processors line");
      return std::nullopt;
    }
    std::istringstream ls(line);
    if (!(ls >> kw >> inst.processors) || kw != "processors" ||
        inst.processors < 1) {
      fail(error, "bad processors line: " + line);
      return std::nullopt;
    }
    if (!next_line(is, &line)) {
      fail(error, "missing jobs line");
      return std::nullopt;
    }
    std::istringstream ls2(line);
    if (!(ls2 >> kw >> n) || kw != "jobs") {
      fail(error, "bad jobs line: " + line);
      return std::nullopt;
    }
  }
  inst.jobs.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (!next_line(is, &line)) {
      fail(error, "missing job line " + std::to_string(j));
      return std::nullopt;
    }
    std::istringstream ls(line);
    std::string kw;
    std::size_t k = 0;
    if (!(ls >> kw >> k) || kw != "job" || k == 0) {
      fail(error, "bad job line: " + line);
      return std::nullopt;
    }
    std::vector<Interval> ivs;
    ivs.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      Interval iv;
      if (!(ls >> iv.lo >> iv.hi) || iv.empty()) {
        fail(error, "bad interval in job line: " + line);
        return std::nullopt;
      }
      ivs.push_back(iv);
    }
    inst.jobs.push_back(Job{TimeSet(std::move(ivs))});
  }
  return inst;
}

std::optional<Instance> instance_from_string(const std::string& text,
                                             std::string* error) {
  std::istringstream is(text);
  return read_instance(is, error);
}

void write_schedule(std::ostream& os, const Schedule& s) {
  os << "gapsched-schedule v1\n";
  os << "jobs " << s.size() << "\n";
  for (std::size_t j = 0; j < s.size(); ++j) {
    if (!s.is_scheduled(j)) continue;
    os << "slot " << j << ' ' << s.at(j)->time << ' ';
    if (s.at(j)->processor == Placement::kUnassigned) {
      os << "-";
    } else {
      os << s.at(j)->processor;
    }
    os << "\n";
  }
}

std::optional<Schedule> read_schedule(std::istream& is, std::string* error) {
  std::string line;
  if (!next_line(is, &line) || line != "gapsched-schedule v1") {
    fail(error, "missing gapsched-schedule v1 header");
    return std::nullopt;
  }
  if (!next_line(is, &line)) {
    fail(error, "missing jobs line");
    return std::nullopt;
  }
  std::size_t n = 0;
  {
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw >> n) || kw != "jobs") {
      fail(error, "bad jobs line: " + line);
      return std::nullopt;
    }
  }
  Schedule s(n);
  while (next_line(is, &line)) {
    std::istringstream ls(line);
    std::string kw, proc;
    std::size_t j = 0;
    Time t = 0;
    if (!(ls >> kw >> j >> t >> proc) || kw != "slot" || j >= n) {
      fail(error, "bad slot line: " + line);
      return std::nullopt;
    }
    int p = Placement::kUnassigned;
    if (proc != "-") {
      try {
        p = std::stoi(proc);
      } catch (...) {
        fail(error, "bad processor in slot line: " + line);
        return std::nullopt;
      }
    }
    s.place(j, t, p);
  }
  return s;
}

}  // namespace gapsched

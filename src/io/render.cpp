#include "gapsched/io/render.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace gapsched {

std::string render_gantt(const Instance& inst, const Schedule& schedule) {
  if (inst.n() == 0) return "(empty instance)\n";

  Schedule s = schedule;
  bool any_unassigned = false;
  for (std::size_t j = 0; j < s.size(); ++j) {
    if (s.is_scheduled(j) && s.at(j)->processor == Placement::kUnassigned) {
      any_unassigned = true;
    }
  }
  if (any_unassigned) s.assign_processors_staircase();

  // busy[(proc, time)] = job.
  std::map<std::pair<int, Time>, std::size_t> busy;
  Time lo = inst.earliest_release(), hi = inst.latest_deadline();
  for (std::size_t j = 0; j < s.size(); ++j) {
    if (!s.is_scheduled(j)) continue;
    busy[{s.at(j)->processor, s.at(j)->time}] = j;
    lo = std::min(lo, s.at(j)->time);
    hi = std::max(hi, s.at(j)->time);
  }

  // Columns: elide long stretches where no processor is busy.
  std::vector<Time> columns;
  std::vector<Time> elisions;  // parallel to columns: elided length after col
  {
    std::vector<Time> busy_times;
    for (const auto& [key, job] : busy) busy_times.push_back(key.second);
    std::sort(busy_times.begin(), busy_times.end());
    busy_times.erase(std::unique(busy_times.begin(), busy_times.end()),
                     busy_times.end());
    Time t = lo;
    while (t <= hi) {
      auto next = std::lower_bound(busy_times.begin(), busy_times.end(), t);
      if (next == busy_times.end()) {
        break;
      }
      if (*next - t > 6) {
        if (!columns.empty()) elisions.back() = *next - t;
        t = *next;
        continue;
      }
      columns.push_back(t);
      elisions.push_back(0);
      ++t;
    }
  }

  std::ostringstream os;
  os << "time ";
  for (std::size_t c = 0; c < columns.size(); ++c) {
    os << (columns[c] % 10);
    if (elisions[c] > 0) os << "~" << elisions[c] << "~";
  }
  os << "   (t0=" << (columns.empty() ? lo : columns.front()) << ")\n";
  for (int q = 0; q < inst.processors; ++q) {
    os << "P" << q << "   ";
    for (std::size_t c = 0; c < columns.size(); ++c) {
      auto it = busy.find({q, columns[c]});
      if (it == busy.end()) {
        os << '.';
      } else {
        os << (it->second % 10);
      }
      if (elisions[c] > 0) {
        os << std::string(2 + std::to_string(elisions[c]).size(), ' ');
      }
    }
    os << "\n";
  }
  return os.str();
}

std::string describe_schedule(const Schedule& schedule, double alpha) {
  const OccupancyProfile prof = schedule.profile();
  std::ostringstream os;
  os << "transitions=" << prof.transitions()
     << " interior_gaps=" << prof.interior_gaps()
     << " busy=" << prof.busy_time() << " power(alpha=" << alpha
     << ")=" << prof.optimal_power(alpha);
  return os.str();
}

}  // namespace gapsched

#include "gapsched/matching/bipartite.hpp"

namespace gapsched {

std::size_t Bipartite::edge_count() const {
  std::size_t total = 0;
  for (const auto& nbrs : adj) total += nbrs.size();
  return total;
}

KuhnMatcher::KuhnMatcher(const Bipartite& graph)
    : g_(graph),
      match_l_(graph.n_left, npos),
      match_r_(graph.n_right, npos) {}

bool KuhnMatcher::seed(std::size_t l, std::size_t r) {
  if (match_l_[l] != npos || match_r_[r] != npos) return false;
  match_l_[l] = r;
  match_r_[r] = l;
  ++matched_;
  return true;
}

bool KuhnMatcher::augment(std::size_t l) {
  if (match_l_[l] != npos) return true;
  std::vector<char> visited(g_.n_right, 0);
  if (try_augment(l, visited)) {
    ++matched_;
    return true;
  }
  return false;
}

std::size_t KuhnMatcher::solve() {
  for (std::size_t l = 0; l < g_.n_left; ++l) augment(l);
  return matched_;
}

bool KuhnMatcher::try_augment(std::size_t l, std::vector<char>& visited) {
  for (std::size_t r : g_.adj[l]) {
    if (visited[r]) continue;
    visited[r] = 1;
    if (match_r_[r] == npos || try_augment(match_r_[r], visited)) {
      match_l_[l] = r;
      match_r_[r] = l;
      return true;
    }
  }
  return false;
}

}  // namespace gapsched

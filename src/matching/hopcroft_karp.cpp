#include "gapsched/matching/hopcroft_karp.hpp"

#include <limits>
#include <queue>

namespace gapsched {

namespace {
constexpr std::size_t kNpos = KuhnMatcher::npos;
constexpr int kInf = std::numeric_limits<int>::max();
}  // namespace

MatchingResult hopcroft_karp(const Bipartite& g) {
  std::vector<std::size_t> match_l(g.n_left, kNpos);
  std::vector<std::size_t> match_r(g.n_right, kNpos);
  std::vector<int> dist(g.n_left, kInf);
  std::size_t matched = 0;

  auto bfs = [&]() -> bool {
    std::queue<std::size_t> q;
    for (std::size_t l = 0; l < g.n_left; ++l) {
      if (match_l[l] == kNpos) {
        dist[l] = 0;
        q.push(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool found_free_right = false;
    while (!q.empty()) {
      std::size_t l = q.front();
      q.pop();
      for (std::size_t r : g.adj[l]) {
        std::size_t l2 = match_r[r];
        if (l2 == kNpos) {
          found_free_right = true;
        } else if (dist[l2] == kInf) {
          dist[l2] = dist[l] + 1;
          q.push(l2);
        }
      }
    }
    return found_free_right;
  };

  // DFS along the BFS layering; iterative-friendly sizes here, recursion ok.
  auto dfs = [&](auto&& self, std::size_t l) -> bool {
    for (std::size_t r : g.adj[l]) {
      std::size_t l2 = match_r[r];
      if (l2 == kNpos || (dist[l2] == dist[l] + 1 && self(self, l2))) {
        match_l[l] = r;
        match_r[r] = l;
        return true;
      }
    }
    dist[l] = kInf;
    return false;
  };

  while (bfs()) {
    for (std::size_t l = 0; l < g.n_left; ++l) {
      if (match_l[l] == kNpos && dfs(dfs, l)) ++matched;
    }
  }

  return MatchingResult{matched, std::move(match_l), std::move(match_r)};
}

}  // namespace gapsched

#include "gapsched/matching/hall.hpp"

#include <algorithm>
#include <queue>

#include "gapsched/matching/feasibility.hpp"

namespace gapsched {

std::optional<HallViolation> hall_certificate(const Instance& inst) {
  const SlotSpace slots = make_slot_space(inst);
  const Bipartite g = build_job_slot_graph(inst, slots);
  const MatchingResult m = hopcroft_karp(g);
  if (m.cardinality == inst.n()) return std::nullopt;

  // Alternating-path closure from the unmatched jobs: job -> any incident
  // slot, slot -> its matched job. The reached job set U has N(U) exactly
  // the reached slots, all matched, and |N(U)| < |U|.
  std::vector<char> job_seen(inst.n(), 0);
  std::vector<char> slot_seen(g.n_right, 0);
  std::queue<std::size_t> frontier;
  for (std::size_t j = 0; j < inst.n(); ++j) {
    if (m.mate_of_left[j] == KuhnMatcher::npos) {
      job_seen[j] = 1;
      frontier.push(j);
    }
  }
  while (!frontier.empty()) {
    const std::size_t j = frontier.front();
    frontier.pop();
    for (std::size_t r : g.adj[j]) {
      if (slot_seen[r]) continue;
      slot_seen[r] = 1;
      const std::size_t holder = m.mate_of_right[r];
      if (holder != KuhnMatcher::npos && !job_seen[holder]) {
        job_seen[holder] = 1;
        frontier.push(holder);
      }
    }
  }

  HallViolation v;
  for (std::size_t j = 0; j < inst.n(); ++j) {
    if (job_seen[j]) v.jobs.push_back(j);
  }
  // Distinct times among the reached slots (slot copies share a time).
  std::vector<Time> times;
  for (std::size_t r = 0; r < g.n_right; ++r) {
    if (slot_seen[r]) times.push_back(slots.time_of(r));
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  v.times = std::move(times);
  return v;
}

bool is_valid_violation(const Instance& inst, const HallViolation& v) {
  if (v.jobs.size() <=
      static_cast<std::size_t>(inst.processors) * v.times.size()) {
    return false;
  }
  // Restricting to candidate times is sound (Prop 2.1 preserves
  // feasibility), so containment is checked against candidate times.
  const SlotSpace slots = make_slot_space(inst);
  for (std::size_t j : v.jobs) {
    if (j >= inst.n()) return false;
    for (Time t : slots.slot_times) {
      if (inst.jobs[j].allowed.contains(t) &&
          !std::binary_search(v.times.begin(), v.times.end(), t)) {
        return false;  // the job could escape to a time outside the witness
      }
    }
  }
  return true;
}

}  // namespace gapsched

#include "gapsched/matching/feasibility.hpp"

#include <algorithm>

namespace gapsched {

SlotSpace make_slot_space(const Instance& inst) {
  return SlotSpace{candidate_times(inst, /*plus_one_closure=*/false),
                   inst.processors};
}

Bipartite build_job_slot_graph(const Instance& inst, const SlotSpace& slots,
                               const TimeSet* forbidden) {
  const auto copies = static_cast<std::size_t>(slots.copies);
  Bipartite g(inst.n(), slots.n_right());
  for (std::size_t j = 0; j < inst.n(); ++j) {
    TimeSet allowed = inst.jobs[j].allowed;
    if (forbidden != nullptr) allowed = allowed.subtract(*forbidden);
    for (const Interval& iv : allowed.intervals()) {
      // Slot indices overlapping [iv.lo, iv.hi].
      auto lo = std::lower_bound(slots.slot_times.begin(),
                                 slots.slot_times.end(), iv.lo);
      auto hi = std::upper_bound(lo, slots.slot_times.end(), iv.hi);
      for (auto it = lo; it != hi; ++it) {
        const std::size_t base =
            static_cast<std::size_t>(it - slots.slot_times.begin()) * copies;
        for (std::size_t c = 0; c < copies; ++c) g.add_edge(j, base + c);
      }
    }
  }
  return g;
}

bool is_feasible(const Instance& inst) {
  const SlotSpace slots = make_slot_space(inst);
  const Bipartite g = build_job_slot_graph(inst, slots);
  return hopcroft_karp(g).cardinality == inst.n();
}

bool is_feasible_excluding(const Instance& inst, const TimeSet& forbidden) {
  const SlotSpace slots = make_slot_space(inst);
  const Bipartite g = build_job_slot_graph(inst, slots, &forbidden);
  return hopcroft_karp(g).cardinality == inst.n();
}

std::optional<Schedule> any_feasible_schedule(const Instance& inst) {
  const SlotSpace slots = make_slot_space(inst);
  const Bipartite g = build_job_slot_graph(inst, slots);
  const MatchingResult m = hopcroft_karp(g);
  if (m.cardinality != inst.n()) return std::nullopt;
  Schedule s(inst.n());
  for (std::size_t j = 0; j < inst.n(); ++j) {
    const std::size_t r = m.mate_of_left[j];
    s.place(j, slots.time_of(r), slots.copy_of(r));
  }
  return s;
}

std::optional<Schedule> extend_schedule(const Instance& inst,
                                        const Schedule& partial) {
  const SlotSpace slots = make_slot_space(inst);
  const Bipartite g = build_job_slot_graph(inst, slots);
  KuhnMatcher matcher(g);

  // Seed with the partial schedule: map each placement to a free slot copy
  // of its time.
  const auto copies = static_cast<std::size_t>(slots.copies);
  for (std::size_t j = 0; j < inst.n(); ++j) {
    if (!partial.is_scheduled(j)) continue;
    const Time t = partial.at(j)->time;
    auto it = std::lower_bound(slots.slot_times.begin(),
                               slots.slot_times.end(), t);
    if (it == slots.slot_times.end() || *it != t) return std::nullopt;
    const std::size_t base =
        static_cast<std::size_t>(it - slots.slot_times.begin()) * copies;
    bool seeded = false;
    for (std::size_t c = 0; c < copies && !seeded; ++c) {
      seeded = matcher.seed(j, base + c);
    }
    if (!seeded) return std::nullopt;  // > p jobs at one time in `partial`
  }

  // Augment the remaining jobs; each success adds exactly one used slot.
  for (std::size_t j = 0; j < inst.n(); ++j) {
    if (!matcher.augment(j)) return std::nullopt;
  }

  Schedule full(inst.n());
  for (std::size_t j = 0; j < inst.n(); ++j) {
    const std::size_t r = matcher.mate_of_left(j);
    full.place(j, slots.time_of(r), slots.copy_of(r));
  }
  return full;
}

}  // namespace gapsched

#include "gapsched/powermin/lemma4.hpp"

#include <algorithm>
#include <cassert>

namespace gapsched {

AlignedBlocks best_aligned_blocks(const std::vector<Time>& busy_times,
                                  int k) {
  assert(k >= 2);
  std::vector<Time> ts = busy_times;
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end()), ts.end());

  // For each aligned start t (t == i mod k), check [t, t+k) fully busy via
  // run lengths: consecutive-run suffix lengths.
  std::vector<std::vector<Time>> starts(static_cast<std::size_t>(k));
  // run_len[j]: length of the consecutive run beginning at ts[j].
  std::vector<std::int64_t> run_len(ts.size());
  for (std::size_t j = ts.size(); j-- > 0;) {
    run_len[j] = 1;
    if (j + 1 < ts.size() && ts[j + 1] == ts[j] + 1) {
      run_len[j] += run_len[j + 1];
    }
  }
  for (std::size_t j = 0; j < ts.size(); ++j) {
    if (run_len[j] >= k) {
      const auto residue =
          static_cast<std::size_t>(((ts[j] % k) + k) % k);
      starts[residue].push_back(ts[j]);
    }
  }
  // Aligned blocks within a class step by k, so blocks of one class never
  // overlap; pick any start whose block fits — but starts k apart: filter
  // starts to be >= previous + k (they automatically are distinct mod-k
  // anchors: two starts of the same class differ by a multiple of k, and
  // both blocks are fully busy, so overlap cannot happen).
  AlignedBlocks best;
  for (int i = 0; i < k; ++i) {
    if (starts[static_cast<std::size_t>(i)].size() >
        best.block_starts.size()) {
      best.residue = i;
      best.block_starts = starts[static_cast<std::size_t>(i)];
    }
  }
  if (best.block_starts.empty()) best.residue = 0;
  return best;
}

double lemma4_bound(std::int64_t busy_units, std::int64_t spans, int k) {
  return (static_cast<double>(busy_units) -
          static_cast<double>(spans) * (k - 1)) /
         static_cast<double>(k);
}

}  // namespace gapsched

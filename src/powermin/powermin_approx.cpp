#include "gapsched/powermin/powermin_approx.hpp"

#include <algorithm>
#include <cassert>

#include "gapsched/matching/feasibility.hpp"
#include "gapsched/setpack/set_packing.hpp"

namespace gapsched {

namespace {

struct BlockSet {
  std::vector<std::size_t> jobs;  // jobs[l] runs at t + l
  Time t = 0;
};

// Builds the Lemma 5 packing instance for residue i and block length k:
// universe elements are job ids (0..n-1) followed by aligned time ids; sets
// are {job_0, ..., job_{k-1}, time(t)} with job_l runnable at t+l.
void build_packing(const Instance& inst, const SlotSpace& slots, int residue,
                   int block, SetPackingInstance* packing,
                   std::vector<BlockSet>* blocks) {
  const std::size_t n = inst.n();
  std::vector<std::vector<std::size_t>> runnable(slots.slot_times.size());
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t s = 0; s < slots.slot_times.size(); ++s) {
      if (inst.jobs[j].allowed.contains(slots.slot_times[s])) {
        runnable[s].push_back(j);
      }
    }
  }
  std::size_t next_elem = n;
  const auto kb = static_cast<std::size_t>(block);
  for (std::size_t s = 0; s + kb - 1 < slots.slot_times.size(); ++s) {
    const Time t = slots.slot_times[s];
    if (static_cast<int>(((t % block) + block) % block) != residue) continue;
    bool contiguous = true;
    for (std::size_t l = 1; l < kb && contiguous; ++l) {
      contiguous = slots.slot_times[s + l] == t + static_cast<Time>(l);
    }
    if (!contiguous) continue;
    const std::size_t time_elem = next_elem++;
    // Enumerate job tuples (job_0, ..., job_{k-1}) with distinct jobs,
    // job_l runnable at t+l, by DFS over positions.
    std::vector<std::size_t> tuple(kb);
    auto enumerate = [&](auto&& self, std::size_t l) -> void {
      if (l == kb) {
        std::vector<std::size_t> elems = tuple;
        elems.push_back(time_elem);
        std::sort(elems.begin(), elems.end());
        packing->sets.push_back(std::move(elems));
        blocks->push_back(BlockSet{tuple, t});
        return;
      }
      for (std::size_t j : runnable[s + l]) {
        if (std::find(tuple.begin(), tuple.begin() + static_cast<long>(l),
                      j) != tuple.begin() + static_cast<long>(l)) {
          continue;
        }
        tuple[l] = j;
        self(self, l + 1);
      }
    };
    enumerate(enumerate, 0);
  }
  packing->universe = next_elem;
}

}  // namespace

PowerMinApproxResult powermin_approx(const Instance& inst, double alpha,
                                     const PowerMinApproxOptions& opts) {
  assert(alpha >= 0.0);
  assert(opts.block_size >= 2 && opts.block_size <= 4);
  Instance single = inst;
  single.processors = 1;

  PowerMinApproxResult out;
  if (single.n() == 0) {
    out.feasible = true;
    out.schedule = Schedule(0);
    return out;
  }
  if (!is_feasible(single)) {
    out.schedule = Schedule(single.n());
    return out;
  }

  const SlotSpace slots = make_slot_space(single);

  // Pack aligned job blocks for every residue class, keep the winner.
  std::vector<BlockSet> best_blocks;
  int best_residue = 0;
  for (int residue = 0; residue < opts.block_size; ++residue) {
    SetPackingInstance packing;
    std::vector<BlockSet> blocks;
    build_packing(single, slots, residue, opts.block_size, &packing, &blocks);
    const PackingResult packed = local_search_packing(packing, opts.swap_size);
    if (residue == 0 || packed.chosen.size() > best_blocks.size()) {
      best_blocks.clear();
      best_blocks.reserve(packed.chosen.size());
      for (std::size_t s : packed.chosen) best_blocks.push_back(blocks[s]);
      best_residue = residue;
    }
  }

  // Partial schedule from the packed blocks.
  Schedule partial(single.n());
  for (const BlockSet& b : best_blocks) {
    for (std::size_t l = 0; l < b.jobs.size(); ++l) {
      partial.place(b.jobs[l], b.t + static_cast<Time>(l), 0);
    }
  }

  // Lemma 3 extension to the full job set.
  auto full = extend_schedule(single, partial);
  assert(full.has_value() && "instance was feasible; extension must succeed");

  out.feasible = true;
  out.pairs_packed = best_blocks.size();
  out.residue = best_residue;
  out.schedule = std::move(*full);
  const OccupancyProfile prof = out.schedule.profile();
  out.transitions = prof.transitions();
  out.power = prof.optimal_power(alpha);
  out.power_no_bridge = prof.power_without_bridging(alpha);
  return out;
}

}  // namespace gapsched

// The staged solve path (see engine/pipeline.hpp). The stage units carry
// the logic that used to live as one monolithic body in
// src/engine/solver.cpp; the walk must stay bit-for-bit equivalent to it —
// the differential, metamorphic, fuzz, and prep suites all pin that.

#include "gapsched/engine/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string_view>
#include <utility>

#include "gapsched/oracle/oracle.hpp"
#include "gapsched/parallel/thread_pool.hpp"
#include "gapsched/util/stopwatch.hpp"

namespace gapsched::engine::pipeline {

namespace {

/// Components are fanned over the fan-out pool only when the largest one
/// is at least this many jobs: dispatch overhead exceeds an entire
/// small-cluster DP solve, so small decompositions run inline.
constexpr std::size_t kParallelFanoutMinComponentJobs = 16;

constexpr std::size_t kNoDup = static_cast<std::size_t>(-1);

/// Shared fan-out pool, lazily constructed on the first large
/// decomposition and reused for every later solve whose environment pins
/// no pool of its own. A per-solve pool would pay thread spawn inside the
/// timed solve and nest a fresh pool under every batch worker. Component
/// tasks never submit back into this pool, so concurrent solves sharing it
/// cannot deadlock — parallel_for's global wait_idle only makes them wait
/// out each other's tasks.
ThreadPool& shared_fanout_pool() {
  static ThreadPool pool;
  return pool;
}

/// Decomposition is sound exactly for the families whose reported objective
/// is provably additive across far-apart components: the exact gap and
/// power solvers. Heuristics may legally return different (still valid)
/// answers per component, and the throughput objective shares one global
/// span budget across components, so both keep the undecomposed path.
bool wants_decomposition(const SolverInfo& info, const SolveRequest& request) {
  return request.params.decompose && info.exact &&
         request.objective != Objective::kThroughput &&
         request.instance.n() >= 2;
}

/// Cut threshold: separation > n keeps the Prop 2.1 candidate
/// neighbourhoods of distinct components disjoint and makes gap optima
/// additive; power additionally needs the dead run to be >= alpha so that
/// bridging a processor across the cut is never cheaper than the fresh
/// wake-up the right component already prices (see prep.hpp).
Time cut_threshold(const SolveRequest& request) {
  Time threshold = static_cast<Time>(request.instance.n());
  if (request.objective == Objective::kPower) {
    const double alpha_ceil = std::ceil(request.params.alpha);
    // check() only guarantees alpha >= 0; an enormous (or infinite) alpha
    // must disable cutting rather than overflow the Time cast.
    if (!(alpha_ceil <
          static_cast<double>(std::numeric_limits<Time>::max() / 2))) {
      return std::numeric_limits<Time>::max();
    }
    threshold = std::max(threshold, static_cast<Time>(alpha_ceil));
  }
  return threshold;
}

/// Compress runs on the decomposed components (core/transforms), which
/// cuts the Prop 2.1 candidate axis and makes canonical cache keys
/// independent of interior dead-run lengths. The cap is length-aware per
/// objective: gap components shrink every run no job can use to one unit
/// (busy-time adjacency is all that matters), while power components keep
/// min(run, ceil(alpha) + 1) units so that every idle-bridging term
/// min(gap, alpha) is preserved exactly — a truncated run alone is already
/// longer than alpha, so any gap it shortens sits on the min's alpha
/// plateau before and after the map. Returns 0 when the request must not
/// be compressed (throughput's span budget is global, an unrepresentable
/// ceil(alpha) must disable truncation rather than overflow, and
/// params.compress opts out).
Time compression_cap(const SolveRequest& request) {
  if (!request.params.compress) return 0;
  switch (request.objective) {
    case Objective::kGaps:
      return 1;
    case Objective::kPower: {
      const double alpha_ceil = std::ceil(request.params.alpha);
      if (!(alpha_ceil <
            static_cast<double>(std::numeric_limits<Time>::max() / 2))) {
        return 0;
      }
      return static_cast<Time>(alpha_ceil) + 1;
    }
    case Objective::kThroughput:
      return 0;
  }
  return 0;
}

/// Maps a schedule produced on a compressed instance back to the
/// uncompressed time axis (job order is unchanged by compression).
Schedule decompress_times(const Schedule& in, const CompressedInstance& ci) {
  Schedule out(in.size());
  for (std::size_t j = 0; j < in.size(); ++j) {
    const std::optional<Placement>& slot = in.at(j);
    if (slot.has_value()) {
      out.place(j, ci.to_original(slot->time), slot->processor);
    }
  }
  return out;
}

/// Maps a schedule of the canonicalized instance back to the original job
/// indices and time origin.
Schedule uncanonicalize(const Schedule& in, const prep::Canonical& canon) {
  Schedule out(in.size());
  for (std::size_t j = 0; j < in.size(); ++j) {
    const std::optional<Placement>& slot = in.at(j);
    if (slot.has_value()) {
      out.place(canon.order[j], slot->time + canon.shift, slot->processor);
    }
  }
  return out;
}

/// Inverse of uncanonicalize: rewrites an original-coordinate schedule in
/// canonical job order and origin, the form cache entries are stored in.
Schedule canonicalize_schedule(const Schedule& in,
                               const prep::Canonical& canon) {
  Schedule out(in.size());
  for (std::size_t j = 0; j < in.size(); ++j) {
    const std::optional<Placement>& slot = in.at(canon.order[j]);
    if (slot.has_value()) {
      out.place(j, slot->time - canon.shift, slot->processor);
    }
  }
  return out;
}

StageStats& stage_of(SolveContext& ctx, PipelineStage stage) {
  return ctx.stages[static_cast<std::size_t>(stage)];
}

/// Disk tier of the CacheLookup stage. A record loaded from the persistent
/// store is UNTRUSTED input: it must be a complete, feasible answer (the
/// only kind the spill policy ever writes — an infeasibility verdict
/// carries no schedule the oracle could re-check, so one arriving from
/// disk is by definition doctored or stale) and it must survive a full
/// oracle re-audit against `canonical`, the exact instance its key
/// hashes. Anything less degrades to a cache miss and a fresh solve —
/// never a wrong answer.
std::shared_ptr<const SolveResult> disk_load(SolveContext& ctx,
                                             const CacheKey& key,
                                             const Instance& canonical) {
  if (!ctx.env.cache->has_store()) return nullptr;
  std::shared_ptr<const SolveResult> cand = ctx.env.cache->probe_disk(key);
  if (cand == nullptr) return nullptr;
  bool admit = cand->ok && cand->feasible && cand->error.empty();
  if (admit) {
    SolveRequest sub;
    sub.instance = canonical;
    sub.objective = ctx.request.objective;
    sub.params = ctx.request.params;
    admit = oracle::check_result(sub, *cand, ctx.solver.info().exact).empty();
  }
  if (!admit) {
    ctx.env.cache->reject_disk(key);
    return nullptr;
  }
  ctx.env.cache->admit_disk(key, *cand);
  return cand;
}

}  // namespace

// --------------------------------------------------------------- stages --

/// Routes the request and computes the canonical form of a whole-instance
/// solve. Decomposed solves skip this: prep::decompose re-anchors every
/// component to sorted jobs at origin 0, so canonicalization happens per
/// component inside the Decompose stage. Without a cache there is nothing
/// to key, so the stage is skipped there too.
void Pipeline::canonicalize(SolveContext& ctx) {
  ctx.decomposing = wants_decomposition(ctx.solver.info(), ctx.request);
  if (ctx.decomposing || ctx.env.cache == nullptr) return;
  stage_of(ctx, PipelineStage::kCanonicalize).ran = true;
  ctx.canonical = prep::canonicalize(ctx.request.instance);
  ctx.whole_key = make_cache_key(ctx.solver.info(), ctx.request.objective,
                                 ctx.request.params, ctx.canonical->instance);
}

/// Splits the instance into independent far-apart components
/// (prep::decompose) and sets up the per-component state later stages
/// fill. When the split finds a single component and neither the cache nor
/// the compressor needs the component form, the request takes the
/// monolithic fast path: Dispatch solves it whole.
void Pipeline::decompose(SolveContext& ctx) {
  if (!ctx.decomposing) return;
  stage_of(ctx, PipelineStage::kDecompose).ran = true;
  ctx.dec = prep::decompose(ctx.request.instance, cut_threshold(ctx.request));
  ctx.cap = compression_cap(ctx.request);
  if (ctx.dec.components.size() <= 1 && ctx.env.cache == nullptr &&
      ctx.cap == 0) {
    ctx.single_component_fast_path = true;
    return;
  }
  const std::size_t m = ctx.dec.components.size();
  ctx.compressed.resize(ctx.cap > 0 ? m : 0);
  ctx.solve_inst.resize(m);
  ctx.parts.resize(m);
  ctx.dup_of.assign(m, kNoDup);
  // Default routing solves every component; CacheLookup refines this to
  // the genuinely-new ones when the environment carries a cache.
  ctx.to_solve.resize(m);
  for (std::size_t c = 0; c < m; ++c) ctx.to_solve[c] = c;
  ctx.agg.components = m;
}

/// Dead-time compresses every component at the objective's length-aware
/// cap. The compressed image is both what Dispatch solves and what
/// CacheLookup hashes — two components differing only in interior dead-run
/// lengths (beyond the cap) share an entry.
void Pipeline::compress(SolveContext& ctx) {
  if (!ctx.decomposing || ctx.single_component_fast_path) return;
  const bool compressing = ctx.cap > 0;
  stage_of(ctx, PipelineStage::kCompress).ran = compressing;
  for (std::size_t c = 0; c < ctx.solve_inst.size(); ++c) {
    if (compressing) {
      ctx.compressed[c] =
          compress_dead_time_capped(ctx.dec.components[c].instance, ctx.cap);
      ctx.solve_inst[c] = &ctx.compressed[c].instance;
      ctx.agg.dead_time_removed += ctx.compressed[c].dead_time_removed();
    } else {
      ctx.solve_inst[c] = &ctx.dec.components[c].instance;
    }
  }
}

/// Consults the environment's content-addressed cache: the whole solve by
/// its canonical key, or — through the decomposition — every component,
/// additionally deduplicating byte-identical components within this one
/// request. Leaves only genuinely new work in `to_solve`.
void Pipeline::cache_lookup(SolveContext& ctx) {
  if (ctx.env.cache == nullptr) return;
  stage_of(ctx, PipelineStage::kCacheLookup).ran = true;
  if (!ctx.decomposing) {
    ctx.whole_hit = ctx.env.cache->lookup(ctx.whole_key);
    if (ctx.whole_hit == nullptr) {
      ctx.whole_hit = disk_load(ctx, ctx.whole_key, ctx.canonical->instance);
    }
    return;
  }
  const std::size_t m = ctx.dec.components.size();
  ctx.keys.reserve(m);
  for (std::size_t c = 0; c < m; ++c) {
    ctx.keys.push_back(make_cache_key(ctx.solver.info(), ctx.request.objective,
                                      ctx.request.params, *ctx.solve_inst[c]));
  }
  ctx.to_solve.clear();
  std::map<std::string_view, std::size_t> first_with_key;
  for (std::size_t c = 0; c < m; ++c) {
    const auto [it, inserted] = first_with_key.try_emplace(ctx.keys[c].text, c);
    if (!inserted) {
      ctx.dup_of[c] = it->second;
      ++ctx.agg.components_deduped;
      continue;
    }
    std::shared_ptr<const SolveResult> hit = ctx.env.cache->lookup(ctx.keys[c]);
    if (hit == nullptr) {
      // Component keys hash the instance Dispatch would solve (the
      // compressed image when compressing), so the disk candidate is
      // audited against exactly that form.
      hit = disk_load(ctx, ctx.keys[c], *ctx.solve_inst[c]);
    }
    if (hit != nullptr) {
      ctx.parts[c] = *hit;  // entry is shared; copy outside the lock
      ctx.hit_components.push_back(c);
      ++ctx.agg.component_cache_hits;
    } else {
      ctx.to_solve.push_back(c);
    }
  }
  ctx.agg.cache_hit =
      ctx.to_solve.empty() && ctx.agg.component_cache_hits > 0;
}

/// Runs the family adapter (do_solve): once for a whole-instance solve, or
/// per component — fanned over the environment's pool for large
/// decompositions — and publishes fresh results to the cache. Skipped
/// entirely when the cache already served everything.
void Pipeline::dispatch(SolveContext& ctx) {
  if (!ctx.decomposing || ctx.single_component_fast_path) {
    if (!ctx.decomposing && ctx.whole_hit != nullptr) return;  // hit serves it
    stage_of(ctx, PipelineStage::kDispatch).ran = true;
    if (!ctx.decomposing && ctx.env.cache != nullptr) {
      // Miss: solve the ORIGINAL instance — heuristic families are
      // job-order sensitive, so a cold solve must behave exactly like the
      // stateless path — and store the result rewritten in canonical
      // coordinates, the form that serves every time-shifted or
      // job-permuted copy of this workload.
      SolveRequest sub;
      sub.instance = ctx.request.instance;
      sub.objective = ctx.request.objective;
      sub.params = ctx.request.params;
      sub.params.validate = false;
      sub.params.time_limit_s = 0.0;
      Stopwatch solve_watch;
      ctx.result = ctx.solver.do_solve(sub);
      const double solve_ms = solve_watch.millis();
      if (ctx.result.ok) {
        SolveResult canonical = ctx.result;
        canonical.schedule =
            canonicalize_schedule(ctx.result.schedule, *ctx.canonical);
        ctx.env.cache->insert(ctx.whole_key, canonical, solve_ms);
      }
      return;
    }
    // The stateless whole-instance path, and the single-component fast
    // path of a decomposition that needs no component form.
    ctx.result = ctx.solver.do_solve(ctx.request);
    return;
  }

  stage_of(ctx, PipelineStage::kDispatch).ran = !ctx.to_solve.empty();
  // Component requests inherit the caller's parameters; the oracle audit
  // and the wall-clock budget apply to the recombined whole, not the parts.
  std::size_t largest = 0;
  for (std::size_t c : ctx.to_solve) {
    largest = std::max(largest, ctx.solve_inst[c]->n());
  }
  // Per-component solve wall time, the disk tier's admission/compaction
  // weight (parts carry no wall_ms of their own — the runner only stamps
  // the recombined whole).
  std::vector<double> solve_ms(ctx.parts.size(), 0.0);
  const auto solve_component = [&ctx, &solve_ms](std::size_t i) {
    const std::size_t c = ctx.to_solve[i];
    SolveRequest sub;
    // Safe to move: cache keys were built by CacheLookup, recombine()
    // reads only the components' job maps and shifts, and
    // decompress_times() reads only the interval maps — nothing needs the
    // instance afterwards.
    sub.instance = std::move(*ctx.solve_inst[c]);
    sub.objective = ctx.request.objective;
    sub.params = ctx.request.params;
    sub.params.validate = false;
    sub.params.time_limit_s = 0.0;
    Stopwatch solve_watch;
    ctx.parts[c] = ctx.solver.do_solve(sub);
    solve_ms[c] = solve_watch.millis();
  };
  if (largest >= kParallelFanoutMinComponentJobs) {
    ThreadPool& pool =
        ctx.env.fanout != nullptr ? *ctx.env.fanout : shared_fanout_pool();
    parallel_for(pool, ctx.to_solve.size(), solve_component);
  } else {
    for (std::size_t i = 0; i < ctx.to_solve.size(); ++i) solve_component(i);
  }
  if (ctx.env.cache != nullptr) {
    for (std::size_t c : ctx.to_solve) {
      if (ctx.parts[c].ok) {
        ctx.env.cache->insert(ctx.keys[c], ctx.parts[c], solve_ms[c]);
      }
    }
  }
}

/// Assembles the final answer: maps a whole-instance cache hit back to the
/// requester's coordinates, or merges the component parts — resolving
/// intra-request duplicates, summing costs/stats across the additive cut,
/// decompressing times, and recombining the schedules.
void Pipeline::recombine(SolveContext& ctx) {
  if (!ctx.decomposing) {
    if (ctx.whole_hit == nullptr) return;  // Dispatch already set result
    stage_of(ctx, PipelineStage::kRecombine).ran = true;
    ctx.result = *ctx.whole_hit;  // entry is shared; copy outside the lock
    ctx.result.stats.cache_hit = true;
    ctx.result.schedule = uncanonicalize(ctx.result.schedule, *ctx.canonical);
    return;
  }
  if (ctx.single_component_fast_path) {
    ctx.result.stats.components = 1;
    return;
  }
  stage_of(ctx, PipelineStage::kRecombine).ran = true;
  const std::size_t m = ctx.dec.components.size();
  if (ctx.env.cache != nullptr) {
    for (std::size_t c = 0; c < m; ++c) {
      if (ctx.dup_of[c] != kNoDup) ctx.parts[c] = ctx.parts[ctx.dup_of[c]];
    }
  }

  SolveResult out;
  out.ok = true;
  out.feasible = true;
  out.stats = ctx.agg;
  for (std::size_t c = 0; c < m; ++c) {
    const SolveResult& part = ctx.parts[c];
    if (!part.ok) {
      // A component the family itself cannot handle (e.g. a single cluster
      // over the DP's packed-key limits) rejects the whole request; the
      // component counter survives so callers can see how far prep got.
      SolveResult rejected = SolveResult::rejected(
          "component " + std::to_string(c) + " of " + std::to_string(m) +
          ": " + part.error);
      rejected.stats = ctx.agg;
      ctx.result = std::move(rejected);
      return;
    }
    out.feasible = out.feasible && part.feasible;
  }
  // states/nodes sum the solver work embodied in the answer's unique
  // components: fresh solves plus the work that originally produced each
  // cached entry (matching the whole-instance hit path); deduplicated
  // copies reuse a counted representative and contribute nothing.
  for (const std::vector<std::size_t>* group :
       {&ctx.to_solve, &ctx.hit_components}) {
    for (std::size_t c : *group) {
      out.stats.states += ctx.parts[c].stats.states;
      out.stats.nodes += ctx.parts[c].stats.nodes;
      out.stats.memo_arena_solves += ctx.parts[c].stats.memo_arena_solves;
      out.stats.memo_hash_solves += ctx.parts[c].stats.memo_hash_solves;
      out.stats.memo_parallel_solves += ctx.parts[c].stats.memo_parallel_solves;
      out.stats.memo_find_calls += ctx.parts[c].stats.memo_find_calls;
      out.stats.memo_probe_steps += ctx.parts[c].stats.memo_probe_steps;
      out.stats.memo_pruned += ctx.parts[c].stats.memo_pruned;
    }
  }
  if (!out.feasible) {
    ctx.result = std::move(out);
    return;
  }

  // Components are separated by more than the cut threshold, so transitions
  // and costs are additive (see prep.hpp for the two objectives' arguments).
  std::vector<Schedule> schedules(m);
  for (std::size_t c = 0; c < m; ++c) {
    out.cost += ctx.parts[c].cost;
    out.transitions += ctx.parts[c].transitions;
    // Deduplicated components share a compressed-coordinate schedule but
    // map back through their own dead-run lengths.
    schedules[c] = ctx.cap > 0
                       ? decompress_times(ctx.parts[c].schedule,
                                          ctx.compressed[c])
                       : std::move(ctx.parts[c].schedule);
  }
  out.schedule = prep::recombine(ctx.dec, schedules, ctx.request.instance.n());
  out.stats.scheduled = out.schedule.scheduled_count();
  ctx.result = std::move(out);
}

/// Re-derives the answer with the independent oracle (params.validate on a
/// non-rejected result). Audit time is excluded from stats.wall_ms, which
/// the runner pins before this stage.
void Pipeline::audit(SolveContext& ctx) {
  if (!ctx.request.params.validate || !ctx.result.ok) return;
  stage_of(ctx, PipelineStage::kAudit).ran = true;
  ctx.result.audited = true;
  ctx.result.audit_error =
      oracle::check_result(ctx.request, ctx.result, ctx.solver.info().exact);
}

// --------------------------------------------------------------- runner --

SolveResult Pipeline::run(const Solver& solver, const SolveRequest& request,
                          const SolveHooks& env) {
  SolveContext ctx(solver, request, env);
  Stopwatch total;
  constexpr struct {
    PipelineStage stage;
    void (*unit)(SolveContext&);
  } kPreAuditStages[] = {
      {PipelineStage::kCanonicalize, &Pipeline::canonicalize},
      {PipelineStage::kDecompose, &Pipeline::decompose},
      {PipelineStage::kCompress, &Pipeline::compress},
      {PipelineStage::kCacheLookup, &Pipeline::cache_lookup},
      {PipelineStage::kDispatch, &Pipeline::dispatch},
      {PipelineStage::kRecombine, &Pipeline::recombine},
  };
  for (const auto& entry : kPreAuditStages) {
    Stopwatch sw;
    entry.unit(ctx);
    ctx.stages[static_cast<std::size_t>(entry.stage)].ms = sw.millis();
  }
  ctx.result.stats.wall_ms = total.millis();
  const double limit = request.params.time_limit_s;
  ctx.result.timed_out = limit > 0.0 && ctx.result.stats.wall_ms > limit * 1e3;
  {
    Stopwatch sw;
    audit(ctx);
    ctx.stages[static_cast<std::size_t>(PipelineStage::kAudit)].ms =
        sw.millis();
  }
  ctx.result.stats.stages = ctx.stages;
  return std::move(ctx.result);
}

}  // namespace gapsched::engine::pipeline

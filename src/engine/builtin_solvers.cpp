// Adapters wiring every algorithm family in the library into the engine's
// Solver interface, plus their registration. register_builtin_solvers() is
// called from SolverRegistry::instance(), giving a hard link-time reference
// to this translation unit (static-initializer registration would be dropped
// from the static library when nothing references it).

#include <memory>
#include <utility>

#include "gapsched/baptiste/baptiste.hpp"
#include "gapsched/bcd/bcd.hpp"
#include "gapsched/dp/dp_common.hpp"
#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/engine/registry.hpp"
#include "gapsched/exact/brute_force.hpp"
#include "gapsched/exact/power_brute_force.hpp"
#include "gapsched/exact/span_search.hpp"
#include "gapsched/greedy/fhkn_greedy.hpp"
#include "gapsched/greedy/lazy.hpp"
#include "gapsched/online/online_edf.hpp"
#include "gapsched/online/online_powerdown.hpp"
#include "gapsched/powermin/powermin_approx.hpp"
#include "gapsched/restart/restart_greedy.hpp"

namespace gapsched::engine {

namespace {

/// Shared base holding the immutable SolverInfo.
class BuiltinSolver : public Solver {
 public:
  explicit BuiltinSolver(SolverInfo info) : info_(std::move(info)) {}
  const SolverInfo& info() const override { return info_; }

 private:
  SolverInfo info_;
};

/// Execution options for the Theorem 1/2 DP solvers: default layout/pruning
/// plus the dedicated DP worker pool, so dense components parallelize their
/// top-level candidate scan even when dispatched from the engine's own
/// fanout workers (dp_pool() is a separate pool precisely to make that
/// nesting safe).
dp::DpOptions dp_options() {
  dp::DpOptions opts;
  opts.pool = &dp::dp_pool();
  return opts;
}

/// Folds a component solve's memo diagnostics into the request's stats.
void fold_memo_stats(SolveStats& stats, const dp::MemoStats& memo) {
  if (memo.layout == dp::MemoLayout::kArena) {
    ++stats.memo_arena_solves;
  } else {
    ++stats.memo_hash_solves;
  }
  if (memo.parallel) ++stats.memo_parallel_solves;
  stats.memo_find_calls += memo.find_calls;
  stats.memo_probe_steps += memo.probe_steps;
  stats.memo_pruned += memo.pruned;
}

SolveResult gap_result(bool feasible, std::int64_t transitions,
                       Schedule schedule) {
  SolveResult out;
  out.ok = true;
  out.feasible = feasible;
  if (feasible) {
    out.cost = static_cast<double>(transitions);
    out.transitions = transitions;
    out.stats.scheduled = schedule.scheduled_count();
    out.schedule = std::move(schedule);
  }
  return out;
}

SolveResult power_result(bool feasible, double power, Schedule schedule) {
  SolveResult out;
  out.ok = true;
  out.feasible = feasible;
  if (feasible) {
    out.cost = power;
    out.transitions = schedule.profile().transitions();
    out.stats.scheduled = schedule.scheduled_count();
    out.schedule = std::move(schedule);
  }
  return out;
}

// ----------------------------------------------------------- gap solvers --

class GapDpSolver final : public BuiltinSolver {
 public:
  GapDpSolver()
      : BuiltinSolver({.name = "gap_dp",
                       .objective = Objective::kGaps,
                       .summary = "exact multiprocessor gap DP",
                       .paper_ref = "Theorem 1 (Section 2)",
                       .complexity = "O(n^7 p^5)",
                       .exact = true,
                       .requires_one_interval = true,
                       // No max_n: the prep decomposition can shrink far
                       // larger sparse instances under the DP's per-
                       // component packed-key limits (n <= dp::kMaxDpJobs,
                       // |Theta| < dp::kMaxThetaSize), which solve_gap_dp
                       // enforces.
                       .max_processors =
                           static_cast<int>(dp::kMaxDpProcessors)}) {}

  SolveResult do_solve(const SolveRequest& req) const override {
    GapDpResult r = solve_gap_dp(req.instance, dp_options());
    // Packed-state limit rejection (post-decomposition: a single component
    // is genuinely too big for the DP's packed memo keys).
    if (!r.error.empty()) return SolveResult::rejected(std::move(r.error));
    SolveResult out = gap_result(r.feasible, r.transitions,
                                 std::move(r.schedule));
    out.stats.states = r.states;
    fold_memo_stats(out.stats, r.memo);
    return out;
  }
};

class BcdPolyGapSolver final : public BuiltinSolver {
 public:
  BcdPolyGapSolver()
      : BuiltinSolver({.name = "bcd_poly_gap",
                       .objective = Objective::kGaps,
                       .summary = "polynomial single-processor gap DP "
                                  "(release-class decomposition)",
                       .paper_ref = "[BCD07] arXiv:0908.3505",
                       .complexity = "poly: O(n^3) states, reachability-"
                                     "driven",
                       .exact = true,
                       .requires_one_interval = true,
                       .max_processors = 1}) {}

  SolveResult do_solve(const SolveRequest& req) const override {
    BcdGapResult r = solve_bcd_gap(req.instance);
    // Shape guard or state/entry budget valve: an honest rejection, never a
    // partial answer.
    if (!r.error.empty()) return SolveResult::rejected(std::move(r.error));
    SolveResult out = gap_result(r.feasible, r.transitions,
                                 std::move(r.schedule));
    out.stats.states = r.states;
    out.stats.nodes = r.entries;
    return out;
  }
};

class BaptisteSolver final : public BuiltinSolver {
 public:
  BaptisteSolver()
      : BuiltinSolver({.name = "baptiste",
                       .objective = Objective::kGaps,
                       .summary = "alias of bcd_poly_gap: polynomial "
                                  "single-processor gap DP [Bap06 problem]",
                       .paper_ref = "[BCD07] arXiv:0908.3505 (baseline of "
                                    "Theorem 1, Section 1)",
                       .complexity = "poly: O(n^3) states, reachability-"
                                     "driven",
                       .exact = true,
                       .requires_one_interval = true,
                       .max_processors = 1}) {}

  SolveResult do_solve(const SolveRequest& req) const override {
    BaptisteResult r = solve_baptiste(req.instance);
    if (!r.error.empty()) return SolveResult::rejected(std::move(r.error));
    return gap_result(r.feasible, r.spans, std::move(r.schedule));
  }
};

class BruteForceSolver final : public BuiltinSolver {
 public:
  BruteForceSolver()
      : BuiltinSolver({.name = "brute_force",
                       .objective = Objective::kGaps,
                       .summary = "exact subset-DP reference (multi-interval, "
                                  "multiprocessor)",
                       .paper_ref = "reproduction ground truth (T1)",
                       .complexity = "O(3^n |Theta| p)",
                       .exact = true,
                       .max_n = 20}) {}

  SolveResult do_solve(const SolveRequest& req) const override {
    ExactGapResult r = brute_force_min_transitions(req.instance);
    return gap_result(r.feasible, r.transitions, std::move(r.schedule));
  }
};

class SpanSearchSolver final : public BuiltinSolver {
 public:
  SpanSearchSolver()
      : BuiltinSolver({.name = "span_search",
                       .objective = Objective::kGaps,
                       .summary = "exact iterative-deepening span search "
                                  "(multi-interval)",
                       .paper_ref = "mid-size exact baseline (Section 5 "
                                    "territory)",
                       .complexity = "exponential, ~n<=24 in practice",
                       .exact = true,
                       .max_processors = 1}) {}

  SolveResult do_solve(const SolveRequest& req) const override {
    SpanSearchResult r = span_search_min_transitions(req.instance);
    SolveResult out = gap_result(r.feasible, r.transitions,
                                 std::move(r.schedule));
    out.stats.nodes = r.nodes;
    return out;
  }
};

class FhknGreedySolver final : public BuiltinSolver {
 public:
  FhknGreedySolver()
      : BuiltinSolver({.name = "fhkn_greedy",
                       .objective = Objective::kGaps,
                       .summary = "FHKN largest-feasible-gap greedy, "
                                  "3-approximation on one-interval input",
                       .paper_ref = "[FHKN06] (Section 1)",
                       .complexity = "O(n^2 log n) matchings",
                       .max_processors = 1}) {}

  SolveResult do_solve(const SolveRequest& req) const override {
    FhknResult r = fhkn_greedy(req.instance);
    return gap_result(r.feasible, r.transitions, std::move(r.schedule));
  }
};

class LazySolver final : public BuiltinSolver {
 public:
  LazySolver()
      : BuiltinSolver({.name = "lazy",
                       .objective = Objective::kGaps,
                       .summary = "deadline-procrastination heuristic",
                       .paper_ref = "[ISG03]/[IP05] family (T8 ladder)",
                       .complexity = "O(n^2) matchings",
                       .requires_one_interval = true,
                       .max_processors = 1}) {}

  SolveResult do_solve(const SolveRequest& req) const override {
    LazyResult r = lazy_schedule(req.instance);
    return gap_result(r.feasible, r.transitions, std::move(r.schedule));
  }
};

class OnlineEdfSolver final : public BuiltinSolver {
 public:
  OnlineEdfSolver()
      : BuiltinSolver({.name = "online_edf",
                       .objective = Objective::kGaps,
                       .summary = "obligatory work-conserving online EDF",
                       .paper_ref = "Omega(n) lower bound (Section 1)",
                       .complexity = "O(horizon + n log n)",
                       .requires_one_interval = true,
                       .max_processors = 1}) {}

  SolveResult do_solve(const SolveRequest& req) const override {
    OnlineResult r = online_edf(req.instance);
    return gap_result(r.feasible, r.transitions, std::move(r.schedule));
  }
};

// --------------------------------------------------------- power solvers --

class BcdPolyPowerSolver final : public BuiltinSolver {
 public:
  BcdPolyPowerSolver()
      : BuiltinSolver({.name = "bcd_poly_power",
                       .objective = Objective::kPower,
                       .summary = "polynomial single-processor min-energy DP "
                                  "(release-class decomposition)",
                       .paper_ref = "[BCD07] arXiv:0908.3505",
                       .complexity = "poly: O(n^3) states, reachability-"
                                     "driven",
                       .exact = true,
                       .requires_one_interval = true,
                       .max_processors = 1,
                       .params = kUsesAlpha}) {}

  SolveResult do_solve(const SolveRequest& req) const override {
    BcdPowerResult r = solve_bcd_power(req.instance, req.params.alpha);
    if (!r.error.empty()) return SolveResult::rejected(std::move(r.error));
    SolveResult out = power_result(r.feasible, r.power, std::move(r.schedule));
    out.stats.states = r.states;
    out.stats.nodes = r.entries;
    return out;
  }
};

class PowerDpSolver final : public BuiltinSolver {
 public:
  PowerDpSolver()
      : BuiltinSolver({.name = "power_dp",
                       .objective = Objective::kPower,
                       .summary = "exact multiprocessor power DP",
                       .paper_ref = "Theorem 2 (Section 2)",
                       .complexity = "O(n^7 p^5)",
                       .exact = true,
                       .requires_one_interval = true,
                       .max_processors =
                           static_cast<int>(dp::kMaxDpProcessors),
                       .params = kUsesAlpha}) {}

  SolveResult do_solve(const SolveRequest& req) const override {
    PowerDpResult r =
        solve_power_dp(req.instance, req.params.alpha, dp_options());
    if (!r.error.empty()) return SolveResult::rejected(std::move(r.error));
    SolveResult out = power_result(r.feasible, r.power, std::move(r.schedule));
    out.stats.states = r.states;
    fold_memo_stats(out.stats, r.memo);
    return out;
  }
};

class PowerBruteForceSolver final : public BuiltinSolver {
 public:
  PowerBruteForceSolver()
      : BuiltinSolver({.name = "power_brute_force",
                       .objective = Objective::kPower,
                       .summary = "exact subset-DP power reference",
                       .paper_ref = "reproduction ground truth (T1)",
                       .complexity = "O(3^n |Theta| p^2)",
                       .exact = true,
                       .max_n = 20,
                       .params = kUsesAlpha}) {}

  SolveResult do_solve(const SolveRequest& req) const override {
    ExactPowerResult r = brute_force_min_power(req.instance, req.params.alpha);
    return power_result(r.feasible, r.power, std::move(r.schedule));
  }
};

class PowerMinApproxSolver final : public BuiltinSolver {
 public:
  PowerMinApproxSolver()
      : BuiltinSolver({.name = "powermin_approx",
                       .objective = Objective::kPower,
                       .summary = "set-packing (1 + (2/3 + eps) alpha)-"
                                  "approximation (multi-interval)",
                       .paper_ref = "Theorem 3 (Section 3)",
                       .complexity = "poly; local-search packing",
                       .max_processors = 1,
                       .params = kUsesAlpha | kUsesPacking}) {}

  SolveResult do_solve(const SolveRequest& req) const override {
    PowerMinApproxOptions opts;
    opts.swap_size = req.params.swap_size;
    opts.block_size = req.params.block_size;
    PowerMinApproxResult r =
        powermin_approx(req.instance, req.params.alpha, opts);
    SolveResult out = power_result(r.feasible, r.power, std::move(r.schedule));
    if (r.feasible) out.transitions = r.transitions;
    return out;
  }
};

class OnlinePowerdownSolver final : public BuiltinSolver {
 public:
  OnlinePowerdownSolver()
      : BuiltinSolver({.name = "online_powerdown",
                       .objective = Objective::kPower,
                       .summary = "online EDF + ski-rental power-down "
                                  "threshold",
                       .paper_ref = "[AIS04] setting (Section 1)",
                       .complexity = "O(horizon + n log n)",
                       .requires_one_interval = true,
                       .max_processors = 1,
                       .params = kUsesAlpha | kUsesThreshold}) {}

  SolveResult do_solve(const SolveRequest& req) const override {
    OnlinePowerdownResult r = online_powerdown(
        req.instance, req.params.alpha, req.params.powerdown_threshold);
    SolveResult out = power_result(r.feasible, r.power, std::move(r.schedule));
    if (r.feasible) out.transitions = r.transitions;
    return out;
  }
};

// ---------------------------------------------------- throughput solvers --

class RestartGreedySolver final : public BuiltinSolver {
 public:
  RestartGreedySolver()
      : BuiltinSolver({.name = "restart_greedy",
                       .objective = Objective::kThroughput,
                       .summary = "max jobs under a span budget, O(sqrt(n))-"
                                  "approximation",
                       .paper_ref = "Theorem 11 (Section 6)",
                       .complexity = "O(k n log n) matchings",
                       .max_processors = 1,
                       .params = kUsesMaxSpans}) {}

  SolveResult do_solve(const SolveRequest& req) const override {
    RestartResult r = restart_greedy(req.instance, req.params.max_spans);
    SolveResult out;
    out.ok = true;
    // A partial schedule is always available; the objective is its size.
    out.feasible = true;
    out.cost = static_cast<double>(r.scheduled);
    out.transitions = static_cast<std::int64_t>(r.working_intervals.size());
    out.stats.scheduled = r.scheduled;
    out.schedule = std::move(r.schedule);
    return out;
  }
};

}  // namespace

void register_builtin_solvers(SolverRegistry& registry) {
  registry.add(std::make_unique<GapDpSolver>());
  registry.add(std::make_unique<BcdPolyGapSolver>());
  registry.add(std::make_unique<BcdPolyPowerSolver>());
  registry.add(std::make_unique<BaptisteSolver>());
  registry.add(std::make_unique<BruteForceSolver>());
  registry.add(std::make_unique<SpanSearchSolver>());
  registry.add(std::make_unique<FhknGreedySolver>());
  registry.add(std::make_unique<LazySolver>());
  registry.add(std::make_unique<OnlineEdfSolver>());
  registry.add(std::make_unique<PowerDpSolver>());
  registry.add(std::make_unique<PowerBruteForceSolver>());
  registry.add(std::make_unique<PowerMinApproxSolver>());
  registry.add(std::make_unique<OnlinePowerdownSolver>());
  registry.add(std::make_unique<RestartGreedySolver>());
}

}  // namespace gapsched::engine

#include "gapsched/engine/cache.hpp"

#include <cstdio>
#include <utility>

#include "gapsched/core/hash.hpp"

namespace gapsched::engine {

namespace {

/// Doubles are keyed at 17 significant digits: enough that any two
/// distinct double values produce distinct text (and equal values always
/// the same text), which is all a deterministic key needs. Unlike the
/// io/json.cpp writer, no shortest-round-trip search is done — keys are
/// not meant to be pretty.
void append_double(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

}  // namespace

CacheKey make_cache_key(const SolverInfo& info, Objective objective,
                        const SolveParams& params, const Instance& canonical) {
  std::string text;
  text.reserve(48 + canonical.n() * 12);
  text += info.name;
  text += '|';
  text += to_string(objective);
  text += "|p";
  text += std::to_string(canonical.processors);
  if ((info.params & kUsesAlpha) != 0) {
    text += "|a=";
    append_double(text, params.alpha);
  }
  if ((info.params & kUsesMaxSpans) != 0) {
    text += "|k=";
    text += std::to_string(params.max_spans);
  }
  if ((info.params & kUsesThreshold) != 0) {
    text += "|t=";
    append_double(text, params.powerdown_threshold);
  }
  if ((info.params & kUsesPacking) != 0) {
    text += "|s=";
    text += std::to_string(params.swap_size);
    text += ",b=";
    text += std::to_string(params.block_size);
  }
  for (const Job& job : canonical.jobs) {
    text += '|';
    for (const Interval& iv : job.allowed.intervals()) {
      text += std::to_string(iv.lo);
      text += ',';
      text += std::to_string(iv.hi);
      text += ';';
    }
  }
  CacheKey key;
  key.digest = fnv1a64(text);
  key.text = std::move(text);
  return key;
}

SolveCache::SolveCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const SolveResult> SolveCache::lookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return it->second.result;
}

void SolveCache::insert(const CacheKey& key, const SolveResult& result) {
  // Request-independent normal form (built outside the lock): the
  // pipeline re-derives timing and audit for every request a hit serves.
  auto stored = std::make_shared<SolveResult>(result);
  stored->stats.wall_ms = 0.0;
  stored->stats.cache_hit = false;
  stored->stats.component_cache_hits = 0;
  stored->stats.components_deduped = 0;
  stored->stats.stages = {};
  stored->timed_out = false;
  stored->audited = false;
  stored->audit_error.clear();

  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Another worker solved the same canonical form first; keep its entry
    // (deterministic solvers produce the same result) and refresh LRU.
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  auto [pos, inserted] =
      map_.emplace(key, Entry{std::move(stored), lru_.end()});
  lru_.push_front(&pos->first);
  pos->second.lru = lru_.begin();
  ++insertions_;
  if (capacity_ > 0 && map_.size() > capacity_) evict_locked();
}

void SolveCache::evict_locked() {
  while (map_.size() > capacity_ && !lru_.empty()) {
    const CacheKey* victim = lru_.back();
    lru_.pop_back();
    map_.erase(*victim);
    ++evictions_;
  }
}

CacheStats SolveCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.entries = map_.size();
  s.capacity = capacity_;
  return s;
}

void SolveCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  map_.clear();
  lru_.clear();
}

}  // namespace gapsched::engine

#include "gapsched/engine/cache.hpp"

#include <cstdio>
#include <optional>
#include <utility>

#include "gapsched/core/hash.hpp"
#include "gapsched/io/json.hpp"
#include "gapsched/store/store.hpp"

namespace gapsched::engine {

namespace {

/// Doubles are keyed at 17 significant digits: enough that any two
/// distinct double values produce distinct text (and equal values always
/// the same text), which is all a deterministic key needs. Unlike the
/// io/json.cpp writer, no shortest-round-trip search is done — keys are
/// not meant to be pretty.
void append_double(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

/// Request-independent normal form of a cached entry: the pipeline
/// re-derives timing and audit for every request a hit serves.
std::shared_ptr<SolveResult> normalize_entry(const SolveResult& result) {
  auto stored = std::make_shared<SolveResult>(result);
  stored->stats.wall_ms = 0.0;
  stored->stats.cache_hit = false;
  stored->stats.component_cache_hits = 0;
  stored->stats.components_deduped = 0;
  stored->stats.stages = {};
  stored->timed_out = false;
  stored->audited = false;
  stored->audit_error.clear();
  return stored;
}

}  // namespace

CacheKey make_cache_key(const SolverInfo& info, Objective objective,
                        const SolveParams& params, const Instance& canonical) {
  std::string text;
  text.reserve(48 + canonical.n() * 12);
  text += info.name;
  text += '|';
  text += to_string(objective);
  text += "|p";
  text += std::to_string(canonical.processors);
  if ((info.params & kUsesAlpha) != 0) {
    text += "|a=";
    append_double(text, params.alpha);
  }
  if ((info.params & kUsesMaxSpans) != 0) {
    text += "|k=";
    text += std::to_string(params.max_spans);
  }
  if ((info.params & kUsesThreshold) != 0) {
    text += "|t=";
    append_double(text, params.powerdown_threshold);
  }
  if ((info.params & kUsesPacking) != 0) {
    text += "|s=";
    text += std::to_string(params.swap_size);
    text += ",b=";
    text += std::to_string(params.block_size);
  }
  for (const Job& job : canonical.jobs) {
    text += '|';
    for (const Interval& iv : job.allowed.intervals()) {
      text += std::to_string(iv.lo);
      text += ',';
      text += std::to_string(iv.hi);
      text += ';';
    }
  }
  CacheKey key;
  key.digest = fnv1a64(text);
  key.text = std::move(text);
  return key;
}

SolveCache::SolveCache(std::size_t capacity) : capacity_(capacity) {}

SolveCache::~SolveCache() {
  {
    std::lock_guard<std::mutex> lk(spill_mu_);
    spill_stop_ = true;
  }
  spill_cv_.notify_all();
  if (spill_thread_.joinable()) spill_thread_.join();
}

void SolveCache::attach_store(store::DiskStore* store, double spill_min_ms) {
  store_ = store;
  spill_min_ms_ = spill_min_ms;
  if (store_ != nullptr && !spill_thread_.joinable()) {
    spill_thread_ = std::thread([this] { spill_worker(); });
  }
}

std::shared_ptr<const SolveResult> SolveCache::lookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return it->second.result;
}

void SolveCache::insert(const CacheKey& key, const SolveResult& result,
                        double solve_ms) {
  // Normal form built outside the lock; this shared entry is also exactly
  // what the spill worker serializes, so disk records carry no
  // request-specific state either.
  std::shared_ptr<SolveResult> stored = normalize_entry(result);
  // Cost-weighted admission to the disk tier: only complete, feasible
  // answers whose solve paid at least the threshold are worth a record.
  // Rejections and infeasible verdicts are NEVER persisted — the oracle
  // cannot independently confirm a no-schedule claim on load, and the
  // disk tier admits nothing the oracle cannot re-check.
  const bool spill = store_ != nullptr && solve_ms >= spill_min_ms_ &&
                     result.ok && result.feasible && result.error.empty();
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      // Another worker solved the same canonical form first; keep its entry
      // (deterministic solvers produce the same result) and refresh LRU.
      lru_.splice(lru_.begin(), lru_, it->second.lru);
    } else {
      auto [pos, inserted] =
          map_.emplace(key, Entry{stored, lru_.end()});
      lru_.push_front(&pos->first);
      pos->second.lru = lru_.begin();
      ++insertions_;
      fresh = inserted;
      if (capacity_ > 0 && map_.size() > capacity_) evict_locked();
    }
  }
  if (spill && fresh) {
    {
      std::lock_guard<std::mutex> lk(spill_mu_);
      spill_queue_.push_back(
          SpillItem{key.digest, key.text, std::move(stored), solve_ms});
    }
    spill_cv_.notify_one();
  }
}

std::shared_ptr<const SolveResult> SolveCache::probe_disk(
    const CacheKey& key) {
  if (store_ == nullptr) return nullptr;
  // The store re-verifies checksum + digest + full key text; anything that
  // deserializes here still goes through the pipeline's oracle re-audit
  // before admit_disk() lets it serve.
  std::optional<std::string> payload = store_->load(key.digest, key.text);
  if (!payload.has_value()) return nullptr;
  std::optional<SolveResult> parsed = io::result_from_json(*payload);
  if (!parsed.has_value()) {
    store_->invalidate(key.digest);
    std::lock_guard<std::mutex> lk(mu_);
    ++disk_rejects_;
    return nullptr;
  }
  return std::make_shared<const SolveResult>(std::move(*parsed));
}

void SolveCache::admit_disk(const CacheKey& key, const SolveResult& result) {
  std::shared_ptr<SolveResult> stored = normalize_entry(result);
  std::lock_guard<std::mutex> lk(mu_);
  ++disk_hits_;
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  auto [pos, inserted] = map_.emplace(key, Entry{std::move(stored),
                                                 lru_.end()});
  lru_.push_front(&pos->first);
  pos->second.lru = lru_.begin();
  ++insertions_;
  if (capacity_ > 0 && map_.size() > capacity_) evict_locked();
}

void SolveCache::reject_disk(const CacheKey& key) {
  if (store_ != nullptr) store_->invalidate(key.digest);
  std::lock_guard<std::mutex> lk(mu_);
  ++disk_rejects_;
}

void SolveCache::flush_spill() {
  std::unique_lock<std::mutex> lk(spill_mu_);
  if (!spill_thread_.joinable()) return;
  spill_idle_cv_.wait(lk,
                      [&] { return spill_queue_.empty() && !spill_busy_; });
}

void SolveCache::spill_worker() {
  for (;;) {
    SpillItem item;
    {
      std::unique_lock<std::mutex> lk(spill_mu_);
      spill_cv_.wait(lk,
                     [&] { return spill_stop_ || !spill_queue_.empty(); });
      if (spill_queue_.empty()) break;  // stopping, and fully drained
      item = std::move(spill_queue_.front());
      spill_queue_.pop_front();
      spill_busy_ = true;
    }
    // Serialize outside every lock; dedup against entries another handle
    // (process, shard) already persisted.
    if (!store_->contains(item.digest)) {
      const std::string payload = io::result_to_json(*item.result);
      if (store_->append(item.digest, item.key_text, payload, item.cost_ms)) {
        std::lock_guard<std::mutex> lk(mu_);
        ++spilled_;
      }
    }
    {
      std::lock_guard<std::mutex> lk(spill_mu_);
      spill_busy_ = false;
      if (spill_queue_.empty()) spill_idle_cv_.notify_all();
    }
  }
}

void SolveCache::evict_locked() {
  while (map_.size() > capacity_ && !lru_.empty()) {
    const CacheKey* victim = lru_.back();
    lru_.pop_back();
    map_.erase(*victim);
    ++evictions_;
  }
}

CacheStats SolveCache::stats() const {
  CacheStats s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    s.hits = hits_;
    s.misses = misses_;
    s.insertions = insertions_;
    s.evictions = evictions_;
    s.entries = map_.size();
    s.capacity = capacity_;
    s.disk_hits = disk_hits_;
    s.disk_rejects = disk_rejects_;
    s.spilled = spilled_;
  }
  if (store_ != nullptr) {
    const store::StoreStats disk = store_->stats();
    // Rejections the store's own scans and loads counted (framing,
    // checksum, identity) fold in with the cache-level deserialize/oracle
    // refusals: one number answers "how many records could not serve".
    s.disk_rejects += disk.rejected_records;
    s.disk_entries = disk.entries;
  }
  return s;
}

void SolveCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  map_.clear();
  lru_.clear();
}

}  // namespace gapsched::engine

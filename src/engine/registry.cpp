#include "gapsched/engine/registry.hpp"

#include <mutex>

namespace gapsched::engine {

// Defined in builtin_solvers.cpp; called exactly once below.
void register_builtin_solvers(SolverRegistry& registry);

SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry registry;
  static std::once_flag once;
  std::call_once(once, [] { register_builtin_solvers(registry); });
  return registry;
}

std::unique_ptr<SolverRegistry> SolverRegistry::create_with_builtins() {
  std::unique_ptr<SolverRegistry> registry(new SolverRegistry);
  register_builtin_solvers(*registry);
  return registry;
}

bool SolverRegistry::add(std::unique_ptr<Solver> solver) {
  const std::string& name = solver->info().name;
  return solvers_.emplace(name, std::move(solver)).second;
}

const Solver* SolverRegistry::find(std::string_view name) const {
  auto it = solvers_.find(name);
  return it == solvers_.end() ? nullptr : it->second.get();
}

std::vector<const Solver*> SolverRegistry::all() const {
  std::vector<const Solver*> out;
  out.reserve(solvers_.size());
  for (const auto& [name, solver] : solvers_) out.push_back(solver.get());
  return out;
}

std::vector<const Solver*> SolverRegistry::for_objective(
    Objective objective) const {
  std::vector<const Solver*> out;
  for (const auto& [name, solver] : solvers_) {
    if (solver->info().objective == objective) out.push_back(solver.get());
  }
  return out;
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(solvers_.size());
  for (const auto& [name, solver] : solvers_) out.push_back(name);
  return out;
}

}  // namespace gapsched::engine

#include "gapsched/engine/solve_many.hpp"

namespace gapsched::engine {

std::vector<SolveResult> solve_many(const std::vector<BatchJob>& jobs,
                                    ThreadPool& pool) {
  std::vector<SolveResult> results(jobs.size());
  // Resolve solver names up front so every entry hits the registry once and
  // worker threads only touch immutable Solver objects.
  std::vector<const Solver*> solvers(jobs.size());
  SolverRegistry& registry = SolverRegistry::instance();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    solvers[i] = registry.find(jobs[i].solver);
  }
  parallel_for(pool, jobs.size(), [&](std::size_t i) {
    results[i] = solvers[i] != nullptr
                     ? solvers[i]->solve(jobs[i].request)
                     : SolveResult::rejected("unknown solver '" +
                                             jobs[i].solver + "'");
  });
  return results;
}

std::vector<SolveResult> solve_many(const Solver& solver,
                                    const std::vector<SolveRequest>& requests,
                                    ThreadPool& pool) {
  std::vector<SolveResult> results(requests.size());
  parallel_for(pool, requests.size(),
               [&](std::size_t i) { results[i] = solver.solve(requests[i]); });
  return results;
}

std::vector<SolveResult> solve_many(const std::vector<BatchJob>& jobs,
                                    std::size_t threads) {
  ThreadPool pool(threads);
  return solve_many(jobs, pool);
}

std::vector<SolveResult> solve_many(const Solver& solver,
                                    const std::vector<SolveRequest>& requests,
                                    std::size_t threads) {
  ThreadPool pool(threads);
  return solve_many(solver, requests, pool);
}

}  // namespace gapsched::engine

#include "gapsched/engine/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "gapsched/core/transforms.hpp"
#include "gapsched/engine/cache.hpp"
#include "gapsched/oracle/oracle.hpp"
#include "gapsched/parallel/thread_pool.hpp"
#include "gapsched/prep/prep.hpp"
#include "gapsched/util/stopwatch.hpp"

namespace gapsched::engine {

namespace {

/// Components are fanned over the shared ThreadPool only when the largest
/// one is at least this many jobs: dispatch overhead exceeds an entire
/// small-cluster DP solve, so small decompositions run inline.
constexpr std::size_t kParallelFanoutMinComponentJobs = 16;

constexpr std::size_t kNoDup = static_cast<std::size_t>(-1);

/// Shared fan-out pool, lazily constructed on the first large
/// decomposition and reused for every later solve. A per-solve pool would
/// pay thread spawn inside the timed solve and nest a fresh pool under
/// every batch worker. Component tasks never submit back into this pool,
/// so concurrent solves sharing it cannot deadlock — parallel_for's global
/// wait_idle only makes them wait out each other's tasks.
ThreadPool& fanout_pool() {
  static ThreadPool pool;
  return pool;
}

/// Decomposition is sound exactly for the families whose reported objective
/// is provably additive across far-apart components: the exact gap and
/// power solvers. Heuristics may legally return different (still valid)
/// answers per component, and the throughput objective shares one global
/// span budget across components, so both keep the undecomposed path.
bool wants_decomposition(const SolverInfo& info, const SolveRequest& request) {
  return request.params.decompose && info.exact &&
         request.objective != Objective::kThroughput &&
         request.instance.n() >= 2;
}

/// Cut threshold: separation > n keeps the Prop 2.1 candidate
/// neighbourhoods of distinct components disjoint and makes gap optima
/// additive; power additionally needs the dead run to be >= alpha so that
/// bridging a processor across the cut is never cheaper than the fresh
/// wake-up the right component already prices (see prep.hpp).
Time cut_threshold(const SolveRequest& request) {
  Time threshold = static_cast<Time>(request.instance.n());
  if (request.objective == Objective::kPower) {
    const double alpha_ceil = std::ceil(request.params.alpha);
    // check() only guarantees alpha >= 0; an enormous (or infinite) alpha
    // must disable cutting rather than overflow the Time cast.
    if (!(alpha_ceil <
          static_cast<double>(std::numeric_limits<Time>::max() / 2))) {
      return std::numeric_limits<Time>::max();
    }
    threshold = std::max(threshold, static_cast<Time>(alpha_ceil));
  }
  return threshold;
}

/// Pipeline solves run on dead-time-compressed components
/// (core/transforms), which cuts the Prop 2.1 candidate axis and makes
/// canonical cache keys independent of interior dead-run lengths. The cap
/// is length-aware per objective: gap components shrink every run no job
/// can use to one unit (busy-time adjacency is all that matters), while
/// power components keep min(run, ceil(alpha) + 1) units so that every
/// idle-bridging term min(gap, alpha) is preserved exactly — a truncated
/// run alone is already longer than alpha, so any gap it shortens sits on
/// the min's alpha plateau before and after the map. Returns 0 when the
/// request must not be compressed (throughput's span budget is global, an
/// unrepresentable ceil(alpha) must disable truncation rather than
/// overflow, and params.compress opts out).
Time compression_cap(const SolveRequest& request) {
  if (!request.params.compress) return 0;
  switch (request.objective) {
    case Objective::kGaps:
      return 1;
    case Objective::kPower: {
      const double alpha_ceil = std::ceil(request.params.alpha);
      if (!(alpha_ceil <
            static_cast<double>(std::numeric_limits<Time>::max() / 2))) {
        return 0;
      }
      return static_cast<Time>(alpha_ceil) + 1;
    }
    case Objective::kThroughput:
      return 0;
  }
  return 0;
}

/// Maps a schedule produced on a compressed instance back to the
/// uncompressed time axis (job order is unchanged by compression).
Schedule decompress_times(const Schedule& in, const CompressedInstance& ci) {
  Schedule out(in.size());
  for (std::size_t j = 0; j < in.size(); ++j) {
    const std::optional<Placement>& slot = in.at(j);
    if (slot.has_value()) {
      out.place(j, ci.to_original(slot->time), slot->processor);
    }
  }
  return out;
}

/// Maps a schedule of the canonicalized instance back to the original job
/// indices and time origin.
Schedule uncanonicalize(const Schedule& in, const prep::Canonical& canon) {
  Schedule out(in.size());
  for (std::size_t j = 0; j < in.size(); ++j) {
    const std::optional<Placement>& slot = in.at(j);
    if (slot.has_value()) {
      out.place(canon.order[j], slot->time + canon.shift, slot->processor);
    }
  }
  return out;
}

/// Inverse of uncanonicalize: rewrites an original-coordinate schedule in
/// canonical job order and origin, the form cache entries are stored in.
Schedule canonicalize_schedule(const Schedule& in,
                               const prep::Canonical& canon) {
  Schedule out(in.size());
  for (std::size_t j = 0; j < in.size(); ++j) {
    const std::optional<Placement>& slot = in.at(canon.order[j]);
    if (slot.has_value()) {
      out.place(j, slot->time - canon.shift, slot->processor);
    }
  }
  return out;
}

}  // namespace

std::string Solver::check(const SolveRequest& request) const {
  const SolverInfo& meta = info();
  if (request.objective != meta.objective) {
    return "solver '" + meta.name + "' handles objective '" +
           std::string(to_string(meta.objective)) + "', not '" +
           std::string(to_string(request.objective)) + "'";
  }
  if (std::string diag = request.instance.validate(); !diag.empty()) {
    return "invalid instance: " + diag;
  }
  if (meta.max_processors > 0 &&
      request.instance.processors > meta.max_processors) {
    return "solver '" + meta.name + "' supports at most " +
           std::to_string(meta.max_processors) + " processor(s), got " +
           std::to_string(request.instance.processors);
  }
  if (meta.max_n > 0 && request.instance.n() > meta.max_n) {
    return "solver '" + meta.name + "' is capped at n <= " +
           std::to_string(meta.max_n) + ", got n = " +
           std::to_string(request.instance.n());
  }
  if (meta.requires_one_interval && !request.instance.is_one_interval()) {
    return "solver '" + meta.name +
           "' requires one-interval (release/deadline) jobs";
  }
  if ((meta.params & kUsesAlpha) != 0 && !(request.params.alpha >= 0.0)) {
    return "alpha must be >= 0";
  }
  if ((meta.params & kUsesMaxSpans) != 0 && request.params.max_spans < 1) {
    return "max_spans must be >= 1";
  }
  if ((meta.params & kUsesPacking) != 0) {
    if (request.params.swap_size < 0 || request.params.swap_size > 2) {
      return "swap_size must be in [0, 2]";
    }
    if (request.params.block_size < 2 || request.params.block_size > 4) {
      return "block_size must be in [2, 4]";
    }
  }
  return "";
}

SolveResult Solver::solve(const SolveRequest& request) const {
  return solve(request, SolveHooks{});
}

SolveResult Solver::solve(const SolveRequest& request,
                          const SolveHooks& hooks) const {
  if (std::string diag = check(request); !diag.empty()) {
    return SolveResult::rejected(std::move(diag));
  }
  Stopwatch sw;
  SolveResult result;
  if (wants_decomposition(info(), request)) {
    result = solve_decomposed(request, hooks);
  } else if (hooks.cache != nullptr) {
    result = solve_whole_cached(request, *hooks.cache);
  } else {
    result = do_solve(request);
  }
  result.stats.wall_ms = sw.millis();
  const double limit = request.params.time_limit_s;
  result.timed_out = limit > 0.0 && result.stats.wall_ms > limit * 1e3;
  if (request.params.validate && result.ok) {
    result.audited = true;
    result.audit_error = oracle::check_result(request, result, info().exact);
  }
  return result;
}

SolveResult Solver::solve_whole_cached(const SolveRequest& request,
                                       SolveCache& cache) const {
  const prep::Canonical canon = prep::canonicalize(request.instance);
  const CacheKey key =
      make_cache_key(info(), request.objective, request.params, canon.instance);
  if (std::shared_ptr<const SolveResult> hit = cache.lookup(key)) {
    SolveResult result = *hit;  // entry is shared; copy outside the lock
    result.stats.cache_hit = true;
    result.schedule = uncanonicalize(result.schedule, canon);
    return result;
  }
  // Miss: solve the ORIGINAL instance — heuristic families are job-order
  // sensitive, so a cold solve must behave exactly like the stateless path
  // — and store the result rewritten in canonical coordinates, the form
  // that serves every time-shifted or job-permuted copy of this workload.
  SolveRequest sub;
  sub.instance = request.instance;
  sub.objective = request.objective;
  sub.params = request.params;
  sub.params.validate = false;
  sub.params.time_limit_s = 0.0;
  SolveResult result = do_solve(sub);
  if (result.ok) {
    SolveResult canonical = result;
    canonical.schedule = canonicalize_schedule(result.schedule, canon);
    cache.insert(key, canonical);
  }
  return result;
}

SolveResult Solver::solve_decomposed(const SolveRequest& request,
                                     const SolveHooks& hooks) const {
  prep::Decomposition dec =
      prep::decompose(request.instance, cut_threshold(request));
  const Time cap = compression_cap(request);
  const bool compress = cap > 0;
  if (dec.components.size() <= 1 && hooks.cache == nullptr && !compress) {
    SolveResult result = do_solve(request);
    result.stats.components = 1;
    return result;
  }

  // Per-component solve form: the decompose() components are already
  // canonical (sorted jobs, origin 0); components are additionally
  // dead-time compressed at the objective's length-aware cap, which is
  // also the form their cache key hashes — two components differing only
  // in interior dead-run lengths (beyond the cap) share an entry.
  const std::size_t m = dec.components.size();
  std::vector<CompressedInstance> compressed(compress ? m : 0);
  std::vector<Instance*> solve_inst(m);
  SolveStats agg;
  for (std::size_t c = 0; c < m; ++c) {
    if (compress) {
      compressed[c] = compress_dead_time_capped(dec.components[c].instance, cap);
      solve_inst[c] = &compressed[c].instance;
      agg.dead_time_removed += compressed[c].dead_time_removed();
    } else {
      solve_inst[c] = &dec.components[c].instance;
    }
  }

  std::vector<SolveResult> parts(m);
  agg.components = m;

  // With a cache: deduplicate identical components within this request and
  // consult the cross-request cache, leaving only genuinely new components
  // to solve. Without one, solve everything (the stateless path).
  std::vector<std::size_t> to_solve;
  std::vector<std::size_t> hit_components;
  std::vector<std::size_t> dup_of(m, kNoDup);
  std::vector<CacheKey> keys;
  if (hooks.cache != nullptr) {
    keys.reserve(m);
    for (std::size_t c = 0; c < m; ++c) {
      keys.push_back(make_cache_key(info(), request.objective, request.params,
                                    *solve_inst[c]));
    }
    std::map<std::string_view, std::size_t> first_with_key;
    for (std::size_t c = 0; c < m; ++c) {
      const auto [it, inserted] = first_with_key.try_emplace(keys[c].text, c);
      if (!inserted) {
        dup_of[c] = it->second;
        ++agg.components_deduped;
        continue;
      }
      if (std::shared_ptr<const SolveResult> hit =
              hooks.cache->lookup(keys[c])) {
        parts[c] = *hit;  // entry is shared; copy outside the lock
        hit_components.push_back(c);
        ++agg.component_cache_hits;
      } else {
        to_solve.push_back(c);
      }
    }
  } else {
    to_solve.resize(m);
    for (std::size_t c = 0; c < m; ++c) to_solve[c] = c;
  }
  agg.cache_hit = hooks.cache != nullptr && to_solve.empty() &&
                  agg.component_cache_hits > 0;

  // Component requests inherit the caller's parameters; the oracle audit
  // and the wall-clock budget apply to the recombined whole, not the parts.
  std::size_t largest = 0;
  for (std::size_t c : to_solve) {
    largest = std::max(largest, solve_inst[c]->n());
  }
  const auto solve_component = [&](std::size_t i) {
    const std::size_t c = to_solve[i];
    SolveRequest sub;
    // Safe to move: cache keys were built above, recombine() reads only
    // the components' job maps and shifts, and decompress_times() reads
    // only the interval maps — nothing needs the instance afterwards.
    sub.instance = std::move(*solve_inst[c]);
    sub.objective = request.objective;
    sub.params = request.params;
    sub.params.validate = false;
    sub.params.time_limit_s = 0.0;
    parts[c] = do_solve(sub);
  };
  if (largest >= kParallelFanoutMinComponentJobs) {
    parallel_for(fanout_pool(), to_solve.size(), solve_component);
  } else {
    for (std::size_t i = 0; i < to_solve.size(); ++i) solve_component(i);
  }
  if (hooks.cache != nullptr) {
    for (std::size_t c : to_solve) {
      if (parts[c].ok) hooks.cache->insert(keys[c], parts[c]);
    }
    for (std::size_t c = 0; c < m; ++c) {
      if (dup_of[c] != kNoDup) parts[c] = parts[dup_of[c]];
    }
  }

  SolveResult out;
  out.ok = true;
  out.feasible = true;
  out.stats = agg;
  for (std::size_t c = 0; c < m; ++c) {
    const SolveResult& part = parts[c];
    if (!part.ok) {
      // A component the family itself cannot handle (e.g. a single cluster
      // over the DP's packed-key limits) rejects the whole request; the
      // component counter survives so callers can see how far prep got.
      SolveResult rejected = SolveResult::rejected(
          "component " + std::to_string(c) + " of " + std::to_string(m) +
          ": " + part.error);
      rejected.stats = agg;
      return rejected;
    }
    out.feasible = out.feasible && part.feasible;
  }
  // states/nodes sum the solver work embodied in the answer's unique
  // components: fresh solves plus the work that originally produced each
  // cached entry (matching the whole-instance hit path); deduplicated
  // copies reuse a counted representative and contribute nothing.
  for (const std::vector<std::size_t>* group : {&to_solve, &hit_components}) {
    for (std::size_t c : *group) {
      out.stats.states += parts[c].stats.states;
      out.stats.nodes += parts[c].stats.nodes;
      out.stats.memo_arena_solves += parts[c].stats.memo_arena_solves;
      out.stats.memo_hash_solves += parts[c].stats.memo_hash_solves;
      out.stats.memo_parallel_solves += parts[c].stats.memo_parallel_solves;
      out.stats.memo_find_calls += parts[c].stats.memo_find_calls;
      out.stats.memo_probe_steps += parts[c].stats.memo_probe_steps;
      out.stats.memo_pruned += parts[c].stats.memo_pruned;
    }
  }
  if (!out.feasible) return out;

  // Components are separated by more than the cut threshold, so transitions
  // and costs are additive (see prep.hpp for the two objectives' arguments).
  std::vector<Schedule> schedules(m);
  for (std::size_t c = 0; c < m; ++c) {
    out.cost += parts[c].cost;
    out.transitions += parts[c].transitions;
    // Deduplicated components share a compressed-coordinate schedule but
    // map back through their own dead-run lengths.
    schedules[c] = compress ? decompress_times(parts[c].schedule, compressed[c])
                            : std::move(parts[c].schedule);
  }
  out.schedule = prep::recombine(dec, schedules, request.instance.n());
  out.stats.scheduled = out.schedule.scheduled_count();
  return out;
}

}  // namespace gapsched::engine

#include "gapsched/engine/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "gapsched/oracle/oracle.hpp"
#include "gapsched/parallel/thread_pool.hpp"
#include "gapsched/prep/prep.hpp"
#include "gapsched/util/stopwatch.hpp"

namespace gapsched::engine {

namespace {

/// Components are fanned over the shared ThreadPool only when the largest
/// one is at least this many jobs: dispatch overhead exceeds an entire
/// small-cluster DP solve, so small decompositions run inline.
constexpr std::size_t kParallelFanoutMinComponentJobs = 16;

/// Shared fan-out pool, lazily constructed on the first large
/// decomposition and reused for every later solve. A per-solve pool would
/// pay thread spawn inside the timed solve and nest a fresh pool under
/// every solve_many worker. Component tasks never submit back into this
/// pool, so concurrent solves sharing it cannot deadlock — parallel_for's
/// global wait_idle only makes them wait out each other's tasks.
ThreadPool& fanout_pool() {
  static ThreadPool pool;
  return pool;
}

/// Decomposition is sound exactly for the families whose reported objective
/// is provably additive across far-apart components: the exact gap and
/// power solvers. Heuristics may legally return different (still valid)
/// answers per component, and the throughput objective shares one global
/// span budget across components, so both keep the undecomposed path.
bool wants_decomposition(const SolverInfo& info, const SolveRequest& request) {
  return request.params.decompose && info.exact &&
         request.objective != Objective::kThroughput &&
         request.instance.n() >= 2;
}

/// Cut threshold: separation > n keeps the Prop 2.1 candidate
/// neighbourhoods of distinct components disjoint and makes gap optima
/// additive; power additionally needs the dead run to be >= alpha so that
/// bridging a processor across the cut is never cheaper than the fresh
/// wake-up the right component already prices (see prep.hpp).
Time cut_threshold(const SolveRequest& request) {
  Time threshold = static_cast<Time>(request.instance.n());
  if (request.objective == Objective::kPower) {
    const double alpha_ceil = std::ceil(request.params.alpha);
    // check() only guarantees alpha >= 0; an enormous (or infinite) alpha
    // must disable cutting rather than overflow the Time cast.
    if (!(alpha_ceil <
          static_cast<double>(std::numeric_limits<Time>::max() / 2))) {
      return std::numeric_limits<Time>::max();
    }
    threshold = std::max(threshold, static_cast<Time>(alpha_ceil));
  }
  return threshold;
}

}  // namespace

std::string Solver::check(const SolveRequest& request) const {
  const SolverInfo& meta = info();
  if (request.objective != meta.objective) {
    return "solver '" + meta.name + "' handles objective '" +
           std::string(to_string(meta.objective)) + "', not '" +
           std::string(to_string(request.objective)) + "'";
  }
  if (std::string diag = request.instance.validate(); !diag.empty()) {
    return "invalid instance: " + diag;
  }
  if (meta.max_processors > 0 &&
      request.instance.processors > meta.max_processors) {
    return "solver '" + meta.name + "' supports at most " +
           std::to_string(meta.max_processors) + " processor(s), got " +
           std::to_string(request.instance.processors);
  }
  if (meta.max_n > 0 && request.instance.n() > meta.max_n) {
    return "solver '" + meta.name + "' is capped at n <= " +
           std::to_string(meta.max_n) + ", got n = " +
           std::to_string(request.instance.n());
  }
  if (meta.requires_one_interval && !request.instance.is_one_interval()) {
    return "solver '" + meta.name +
           "' requires one-interval (release/deadline) jobs";
  }
  if ((meta.params & kUsesAlpha) != 0 && !(request.params.alpha >= 0.0)) {
    return "alpha must be >= 0";
  }
  if ((meta.params & kUsesMaxSpans) != 0 && request.params.max_spans < 1) {
    return "max_spans must be >= 1";
  }
  if ((meta.params & kUsesPacking) != 0) {
    if (request.params.swap_size < 0 || request.params.swap_size > 2) {
      return "swap_size must be in [0, 2]";
    }
    if (request.params.block_size < 2 || request.params.block_size > 4) {
      return "block_size must be in [2, 4]";
    }
  }
  return "";
}

SolveResult Solver::solve(const SolveRequest& request) const {
  if (std::string diag = check(request); !diag.empty()) {
    return SolveResult::rejected(std::move(diag));
  }
  Stopwatch sw;
  SolveResult result = wants_decomposition(info(), request)
                           ? solve_decomposed(request)
                           : do_solve(request);
  result.stats.wall_ms = sw.millis();
  const double limit = request.params.time_limit_s;
  result.timed_out = limit > 0.0 && result.stats.wall_ms > limit * 1e3;
  if (request.params.validate && result.ok) {
    result.audited = true;
    result.audit_error = oracle::check_result(request, result, info().exact);
  }
  return result;
}

SolveResult Solver::solve_decomposed(const SolveRequest& request) const {
  prep::Decomposition dec =
      prep::decompose(request.instance, cut_threshold(request));
  if (dec.components.size() <= 1) {
    SolveResult result = do_solve(request);
    result.stats.components = 1;
    return result;
  }

  // Component requests inherit the caller's parameters; the oracle audit
  // and the wall-clock budget apply to the recombined whole, not the parts.
  // The component instances are moved into the sub-requests — recombine()
  // only needs the job maps and shifts.
  std::size_t largest = 0;
  for (const prep::Component& comp : dec.components) {
    largest = std::max(largest, comp.instance.n());
  }
  std::vector<SolveResult> parts(dec.components.size());
  const auto solve_component = [&](std::size_t c) {
    SolveRequest sub;
    sub.instance = std::move(dec.components[c].instance);
    sub.objective = request.objective;
    sub.params = request.params;
    sub.params.validate = false;
    sub.params.time_limit_s = 0.0;
    parts[c] = do_solve(sub);
  };
  if (largest >= kParallelFanoutMinComponentJobs) {
    parallel_for(fanout_pool(), dec.components.size(), solve_component);
  } else {
    for (std::size_t c = 0; c < dec.components.size(); ++c) {
      solve_component(c);
    }
  }

  SolveResult out;
  out.ok = true;
  out.feasible = true;
  out.stats.components = dec.components.size();
  for (std::size_t c = 0; c < parts.size(); ++c) {
    const SolveResult& part = parts[c];
    if (!part.ok) {
      // A component the family itself cannot handle (e.g. a single cluster
      // over the DP's packed-key limits) rejects the whole request; the
      // component counter survives so callers can see how far prep got.
      SolveResult rejected = SolveResult::rejected(
          "component " + std::to_string(c) + " of " +
          std::to_string(parts.size()) + ": " + part.error);
      rejected.stats.components = dec.components.size();
      return rejected;
    }
    out.feasible = out.feasible && part.feasible;
    out.stats.states += part.stats.states;
    out.stats.nodes += part.stats.nodes;
  }
  if (!out.feasible) return out;

  // Components are separated by more than the cut threshold, so transitions
  // and costs are additive (see prep.hpp for the two objectives' arguments).
  std::vector<Schedule> schedules;
  schedules.reserve(parts.size());
  for (SolveResult& part : parts) {
    out.cost += part.cost;
    out.transitions += part.transitions;
    schedules.push_back(std::move(part.schedule));
  }
  out.schedule = prep::recombine(dec, schedules, request.instance.n());
  out.stats.scheduled = out.schedule.scheduled_count();
  return out;
}

}  // namespace gapsched::engine

#include "gapsched/engine/solver.hpp"

#include <string>
#include <utility>

#include "gapsched/engine/pipeline.hpp"

namespace gapsched::engine {

std::string Solver::check(const SolveRequest& request) const {
  const SolverInfo& meta = info();
  if (request.objective != meta.objective) {
    return "solver '" + meta.name + "' handles objective '" +
           std::string(to_string(meta.objective)) + "', not '" +
           std::string(to_string(request.objective)) + "'";
  }
  if (std::string diag = request.instance.validate(); !diag.empty()) {
    return "invalid instance: " + diag;
  }
  if (meta.max_processors > 0 &&
      request.instance.processors > meta.max_processors) {
    return "solver '" + meta.name + "' supports at most " +
           std::to_string(meta.max_processors) + " processor(s), got " +
           std::to_string(request.instance.processors);
  }
  if (meta.max_n > 0 && request.instance.n() > meta.max_n) {
    return "solver '" + meta.name + "' is capped at n <= " +
           std::to_string(meta.max_n) + ", got n = " +
           std::to_string(request.instance.n());
  }
  if (meta.requires_one_interval && !request.instance.is_one_interval()) {
    return "solver '" + meta.name +
           "' requires one-interval (release/deadline) jobs";
  }
  if ((meta.params & kUsesAlpha) != 0 && !(request.params.alpha >= 0.0)) {
    return "alpha must be >= 0";
  }
  if ((meta.params & kUsesMaxSpans) != 0 && request.params.max_spans < 1) {
    return "max_spans must be >= 1";
  }
  if ((meta.params & kUsesPacking) != 0) {
    if (request.params.swap_size < 0 || request.params.swap_size > 2) {
      return "swap_size must be in [0, 2]";
    }
    if (request.params.block_size < 2 || request.params.block_size > 4) {
      return "block_size must be in [2, 4]";
    }
  }
  return "";
}

SolveResult Solver::solve(const SolveRequest& request) const {
  return solve(request, SolveHooks{});
}

SolveResult Solver::solve(const SolveRequest& request,
                          const SolveHooks& hooks) const {
  if (std::string diag = check(request); !diag.empty()) {
    return SolveResult::rejected(std::move(diag));
  }
  return pipeline::Pipeline::run(*this, request, hooks);
}

}  // namespace gapsched::engine

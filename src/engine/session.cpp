#include "gapsched/engine/session.hpp"

#include <string>

#include "gapsched/parallel/thread_pool.hpp"

namespace gapsched::engine {

Session::Session(const SolverRegistry& registry, SolveCache* cache,
                 std::size_t threads)
    : registry_(registry), cache_(cache), threads_(threads) {}

Session::~Session() = default;

SolveResult Session::solve(std::string_view solver,
                           const SolveRequest& request) {
  const Solver* s = registry_.find(solver);
  if (s == nullptr) {
    SolveResult rejected =
        SolveResult::rejected("unknown solver '" + std::string(solver) + "'");
    record(rejected);
    return rejected;
  }
  return solve(*s, request);
}

SolveResult Session::solve(const Solver& solver, const SolveRequest& request) {
  SolveResult result = solver.solve(request, SolveHooks{cache_});
  record(result);
  return result;
}

std::vector<SolveResult> Session::solve_batch(
    const std::vector<BatchJob>& jobs) {
  return solve_stream(jobs, nullptr);
}

std::vector<SolveResult> Session::solve_stream(
    const std::vector<BatchJob>& jobs, const StreamCallback& on_result) {
  std::vector<SolveResult> results(jobs.size());
  // Resolve solver names up front so every entry hits the registry once and
  // worker threads only touch immutable Solver objects.
  std::vector<const Solver*> solvers(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    solvers[i] = registry_.find(jobs[i].solver);
  }
  const SolveHooks hooks{cache_};
  std::mutex callback_mu;
  parallel_for(batch_pool(), jobs.size(), [&](std::size_t i) {
    results[i] = solvers[i] != nullptr
                     ? solvers[i]->solve(jobs[i].request, hooks)
                     : SolveResult::rejected("unknown solver '" +
                                             jobs[i].solver + "'");
    record(results[i]);
    if (on_result) {
      std::lock_guard<std::mutex> lk(callback_mu);
      on_result(i, results[i]);
    }
  });
  return results;
}

pipeline::PipelineStats Session::pipeline_stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

void Session::reset_pipeline_stats() {
  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_ = pipeline::PipelineStats{};
}

void Session::record(const SolveResult& result) {
  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_.absorb(result.stats);
}

ThreadPool& Session::batch_pool() {
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(threads_);
  }
  return *pool_;
}

}  // namespace gapsched::engine

#include "gapsched/engine/types.hpp"

namespace gapsched::engine {

std::string_view to_string(Objective objective) {
  switch (objective) {
    case Objective::kGaps:
      return "gaps";
    case Objective::kPower:
      return "power";
    case Objective::kThroughput:
      return "throughput";
  }
  return "unknown";
}

std::optional<Objective> objective_from_string(std::string_view name) {
  if (name == "gaps") return Objective::kGaps;
  if (name == "power") return Objective::kPower;
  if (name == "throughput") return Objective::kThroughput;
  return std::nullopt;
}

}  // namespace gapsched::engine

#include "gapsched/engine/types.hpp"

namespace gapsched::engine {

std::string_view to_string(Objective objective) {
  switch (objective) {
    case Objective::kGaps:
      return "gaps";
    case Objective::kPower:
      return "power";
    case Objective::kThroughput:
      return "throughput";
  }
  return "unknown";
}

std::optional<Objective> objective_from_string(std::string_view name) {
  if (name == "gaps") return Objective::kGaps;
  if (name == "power") return Objective::kPower;
  if (name == "throughput") return Objective::kThroughput;
  return std::nullopt;
}

std::string_view to_string(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kCanonicalize:
      return "canonicalize";
    case PipelineStage::kDecompose:
      return "decompose";
    case PipelineStage::kCompress:
      return "compress";
    case PipelineStage::kCacheLookup:
      return "cache_lookup";
    case PipelineStage::kDispatch:
      return "dispatch";
    case PipelineStage::kRecombine:
      return "recombine";
    case PipelineStage::kAudit:
      return "audit";
  }
  return "unknown";
}

std::optional<PipelineStage> pipeline_stage_from_string(std::string_view name) {
  for (std::size_t i = 0; i < kPipelineStageCount; ++i) {
    const auto stage = static_cast<PipelineStage>(i);
    if (name == to_string(stage)) return stage;
  }
  return std::nullopt;
}

}  // namespace gapsched::engine

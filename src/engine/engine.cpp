#include "gapsched/engine/engine.hpp"

#include <utility>

#include "gapsched/store/store.hpp"

namespace gapsched::engine {

BatchSummary summarize(const std::vector<SolveResult>& results) {
  BatchSummary s;
  s.total = results.size();
  for (const SolveResult& r : results) {
    if (!r.ok) {
      ++s.rejected;
      continue;
    }
    ++s.ok;
    if (r.feasible) {
      ++s.feasible;
    } else {
      ++s.infeasible;
    }
    if (r.timed_out) ++s.timed_out;
    if (r.audited) {
      ++s.audited;
      if (!r.audit_error.empty()) ++s.refuted;
    }
    if (r.stats.cache_hit) ++s.cache_hits;
    s.component_cache_hits += r.stats.component_cache_hits;
    s.components_deduped += r.stats.components_deduped;
  }
  return s;
}

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      registry_(SolverRegistry::create_with_builtins()),
      cache_(options_.cache
                 ? std::make_unique<SolveCache>(options_.cache_capacity)
                 : nullptr),
      session_(std::make_unique<Session>(*registry_, cache_.get(),
                                         options_.threads)) {
  if (cache_ != nullptr && !options_.store_path.empty()) {
    store::StoreOptions sopt;
    sopt.max_bytes = options_.store_max_bytes;
    store_ = store::DiskStore::open(options_.store_path, sopt, &store_error_);
    // Open failure leaves the engine memory-only: a corrupt or foreign
    // store file degrades persistence, never a solve.
    if (store_ != nullptr) {
      cache_->attach_store(store_.get(), options_.store_spill_min_ms);
    }
  }
}

Engine::~Engine() = default;

SolveResult Engine::solve(std::string_view solver,
                          const SolveRequest& request) {
  return session_->solve(solver, request);
}

SolveResult Engine::solve(const Solver& solver, const SolveRequest& request) {
  return session_->solve(solver, request);
}

std::vector<SolveResult> Engine::solve_batch(
    const std::vector<BatchJob>& jobs) {
  return session_->solve_batch(jobs);
}

std::vector<SolveResult> Engine::solve_stream(
    const std::vector<BatchJob>& jobs, const StreamCallback& on_result) {
  return session_->solve_stream(jobs, on_result);
}

CacheStats Engine::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : CacheStats{};
}

void Engine::clear_cache() {
  if (cache_ != nullptr) cache_->clear();
}

void Engine::flush_store() {
  if (cache_ != nullptr) cache_->flush_spill();
}

}  // namespace gapsched::engine

#include "gapsched/engine/engine.hpp"

#include <utility>

namespace gapsched::engine {

BatchSummary summarize(const std::vector<SolveResult>& results) {
  BatchSummary s;
  s.total = results.size();
  for (const SolveResult& r : results) {
    if (!r.ok) {
      ++s.rejected;
      continue;
    }
    ++s.ok;
    if (r.feasible) {
      ++s.feasible;
    } else {
      ++s.infeasible;
    }
    if (r.timed_out) ++s.timed_out;
    if (r.audited) {
      ++s.audited;
      if (!r.audit_error.empty()) ++s.refuted;
    }
    if (r.stats.cache_hit) ++s.cache_hits;
    s.component_cache_hits += r.stats.component_cache_hits;
    s.components_deduped += r.stats.components_deduped;
  }
  return s;
}

Engine::Engine(EngineOptions options)
    : options_(options),
      registry_(SolverRegistry::create_with_builtins()),
      cache_(options.cache
                 ? std::make_unique<SolveCache>(options.cache_capacity)
                 : nullptr) {}

Engine::~Engine() = default;

SolveResult Engine::solve(std::string_view solver,
                          const SolveRequest& request) {
  const Solver* s = registry_->find(solver);
  if (s == nullptr) {
    return SolveResult::rejected("unknown solver '" + std::string(solver) +
                                 "'");
  }
  return solve(*s, request);
}

SolveResult Engine::solve(const Solver& solver, const SolveRequest& request) {
  return solver.solve(request, SolveHooks{cache_.get()});
}

std::vector<SolveResult> Engine::solve_batch(
    const std::vector<BatchJob>& jobs) {
  return solve_stream(jobs, nullptr);
}

std::vector<SolveResult> Engine::solve_stream(
    const std::vector<BatchJob>& jobs, const StreamCallback& on_result) {
  std::vector<SolveResult> results(jobs.size());
  // Resolve solver names up front so every entry hits the registry once and
  // worker threads only touch immutable Solver objects.
  std::vector<const Solver*> solvers(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    solvers[i] = registry_->find(jobs[i].solver);
  }
  const SolveHooks hooks{cache_.get()};
  std::mutex callback_mu;
  parallel_for(batch_pool(), jobs.size(), [&](std::size_t i) {
    results[i] = solvers[i] != nullptr
                     ? solvers[i]->solve(jobs[i].request, hooks)
                     : SolveResult::rejected("unknown solver '" +
                                             jobs[i].solver + "'");
    if (on_result) {
      std::lock_guard<std::mutex> lk(callback_mu);
      on_result(i, results[i]);
    }
  });
  return results;
}

CacheStats Engine::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : CacheStats{};
}

void Engine::clear_cache() {
  if (cache_ != nullptr) cache_->clear();
}

ThreadPool& Engine::batch_pool() {
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
  return *pool_;
}

}  // namespace gapsched::engine

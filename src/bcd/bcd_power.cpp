#include "gapsched/bcd/bcd.hpp"

#include <cassert>
#include <cmath>
#include <utility>

namespace gapsched {

BcdPowerResult solve_bcd_power(const Instance& inst, double alpha,
                               const bcd::BcdOptions& opts) {
  assert(alpha >= 0.0);
  BcdPowerResult out;
  if (inst.n() == 0) {
    out.feasible = true;
    out.schedule = Schedule(0);
    return out;
  }
  // The lead cap is the integer ceiling of alpha; past ~1e15 that cast (and
  // any meaningful bridging decision) is degenerate, so refuse honestly.
  if (!std::isfinite(alpha) || alpha < 0.0 || alpha > 1e15) {
    out.error = "bcd power DP requires a finite alpha in [0, 1e15]";
    out.schedule = Schedule(inst.n());
    return out;
  }
  bcd::PowerSeamPolicy policy;
  policy.alpha = alpha;
  policy.cap = static_cast<Time>(std::ceil(alpha));
  bcd::BcdEngine<bcd::PowerSeamPolicy> engine(inst, policy, opts);
  if (!engine.run()) {
    out.error = engine.error();
    out.schedule = Schedule(inst.n());
    return out;
  }
  out.feasible = engine.feasible();
  out.states = engine.states();
  out.entries = engine.entries_kept();
  if (out.feasible) {
    // Internal cost is the bridging sum over interior gaps; the objective
    // adds n active slots and one unavoidable wake-up (Section 2).
    out.power = static_cast<double>(inst.n()) + alpha + engine.cost();
    out.schedule = engine.extract_schedule();
  } else {
    out.schedule = Schedule(inst.n());
  }
  return out;
}

BcdPowerResult solve_bcd_power(const Instance& inst, double alpha) {
  return solve_bcd_power(inst, alpha, bcd::BcdOptions{});
}

}  // namespace gapsched

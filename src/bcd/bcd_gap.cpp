#include "gapsched/bcd/bcd.hpp"

#include <utility>

namespace gapsched {

BcdGapResult solve_bcd_gap(const Instance& inst,
                           const bcd::BcdOptions& opts) {
  BcdGapResult out;
  if (inst.n() == 0) {
    out.feasible = true;
    out.schedule = Schedule(0);
    return out;
  }
  bcd::BcdEngine<bcd::GapSeamPolicy> engine(inst, bcd::GapSeamPolicy{}, opts);
  if (!engine.run()) {
    out.error = engine.error();
    out.schedule = Schedule(inst.n());
    return out;
  }
  out.feasible = engine.feasible();
  out.states = engine.states();
  out.entries = engine.entries_kept();
  if (out.feasible) {
    // Internal cost counts interior gaps; on one processor each busy block
    // is one sleep->active transition, so blocks = interior gaps + 1.
    out.transitions = engine.cost() + 1;
    out.schedule = engine.extract_schedule();
  } else {
    out.schedule = Schedule(inst.n());
  }
  return out;
}

BcdGapResult solve_bcd_gap(const Instance& inst) {
  return solve_bcd_gap(inst, bcd::BcdOptions{});
}

}  // namespace gapsched

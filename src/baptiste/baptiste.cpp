#include "gapsched/baptiste/baptiste.hpp"

#include <utility>

#include "gapsched/dp/gap_dp.hpp"

namespace gapsched {

BaptisteResult solve_baptiste(const Instance& inst) {
  Instance single = inst;
  single.processors = 1;
  GapDpResult r = solve_gap_dp(single);
  BaptisteResult out;
  out.error = std::move(r.error);
  out.feasible = r.feasible;
  if (r.feasible) {
    out.spans = r.transitions;
    out.gaps = r.transitions > 0 ? r.transitions - 1 : 0;
    out.schedule = std::move(r.schedule);
  } else {
    out.schedule = Schedule(inst.n());
  }
  return out;
}

}  // namespace gapsched

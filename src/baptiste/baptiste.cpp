#include "gapsched/baptiste/baptiste.hpp"

#include <utility>

#include "gapsched/bcd/bcd.hpp"

namespace gapsched {

BaptisteResult solve_baptiste(const Instance& inst) {
  BcdGapResult r = solve_bcd_gap(inst);
  BaptisteResult out;
  out.error = std::move(r.error);
  out.feasible = r.feasible;
  if (r.feasible) {
    out.spans = r.transitions;
    out.gaps = r.transitions > 0 ? r.transitions - 1 : 0;
    out.schedule = std::move(r.schedule);
  } else {
    out.schedule = Schedule(inst.n());
  }
  return out;
}

}  // namespace gapsched

#include "gapsched/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "gapsched/store/store.hpp"

namespace gapsched::serve {

using Clock = std::chrono::steady_clock;

/// Per-connection state shared by its reader, its writer, and every shard
/// task it has in flight.
struct Server::Connection {
  Connection(const engine::SolverRegistry& registry,
             engine::SolveCache* cache, TcpStream stream_in,
             std::size_t outbound_capacity, std::size_t max_frame_bytes)
      : stream(std::move(stream_in)),
        session(registry, cache, /*threads=*/1),
        outbound(outbound_capacity),
        lines(max_frame_bytes) {}

  TcpStream stream;
  /// The per-tenant engine seam: this connection's requests walk the
  /// pipeline through its own Session (shared registry + shared cache),
  /// executed on whichever shard their content hashes to.
  engine::Session session;
  /// Completion-order frames awaiting the writer; bounded, so a slow
  /// client backpressures the shard workers producing for it.
  BoundedQueue<std::string> outbound;
  LineBuffer lines;  // reader-only reassembly buffer

  std::mutex mu;
  std::condition_variable idle_cv;
  std::size_t in_flight = 0;  // shard tasks not yet delivered

  void task_started() {
    std::lock_guard<std::mutex> lk(mu);
    ++in_flight;
  }
  void task_finished() {
    std::lock_guard<std::mutex> lk(mu);
    --in_flight;
    if (in_flight == 0) idle_cv.notify_all();
  }
  void wait_idle() {
    std::unique_lock<std::mutex> lk(mu);
    idle_cv.wait(lk, [&] { return in_flight == 0; });
  }
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      registry_(engine::SolverRegistry::create_with_builtins()),
      cache_(std::make_unique<engine::SolveCache>(options_.cache_capacity)) {
  if (options_.shards == 0) {
    const std::size_t hw = std::thread::hardware_concurrency();
    options_.shards = std::max<std::size_t>(1, std::min<std::size_t>(4, hw));
  }
}

Server::~Server() { drain(); }

std::size_t Server::shards() const { return options_.shards; }

bool Server::start(std::string* error) {
  if (!options_.store_path.empty()) {
    store::StoreOptions sopt;
    sopt.max_bytes = options_.store_max_bytes;
    store_ = store::DiskStore::open(options_.store_path, sopt, error);
    if (store_ == nullptr) return false;
    // Every shard shares the one cache, so one attach covers them all;
    // loads are still oracle-gated per request in the pipeline.
    cache_->attach_store(store_.get(), options_.store_spill_min_ms);
  }
  auto listener = TcpListener::listen(options_.host, options_.port, error);
  if (!listener.has_value()) return false;
  listener_ = std::move(*listener);
  port_ = listener_.port();
  shard_states_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shard_states_.push_back(std::make_unique<ShardState>());
  }
  shard_pool_ =
      std::make_unique<ShardPool>(options_.shards, options_.shard_queue);
  started_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::accept_loop() {
  for (;;) {
    auto stream = listener_.accept();
    if (!stream.has_value()) return;  // listener closed: drain under way
    if (draining_.load()) continue;   // racing connect during drain
    auto conn = std::make_shared<Connection>(
        *registry_, cache_.get(), std::move(*stream),
        options_.outbound_queue, options_.max_frame_bytes);
    std::lock_guard<std::mutex> lk(conns_mu_);
    reap_finished_locked();
    ConnEntry entry;
    entry.conn = conn;
    entry.reader = std::thread([this, conn] { reader_loop(conn); });
    entry.writer = std::thread([this, conn] { writer_loop(conn); });
    conns_.push_back(std::move(entry));
  }
}

void Server::reap_finished_locked() {
  // A finished connection has both queues settled: its writer exited
  // (outbound closed and drained) and its reader returned. joinable()
  // alone cannot tell, so probe cheaply: a connection whose outbound
  // queue is closed and whose in_flight is zero is joinable without
  // blocking the acceptor for long. Everything still live is left alone;
  // drain() joins the remainder.
  std::vector<ConnEntry> live;
  live.reserve(conns_.size());
  for (ConnEntry& entry : conns_) {
    bool idle = false;
    {
      std::lock_guard<std::mutex> clk(entry.conn->mu);
      idle = entry.conn->in_flight == 0;
    }
    if (idle && entry.conn.use_count() == 1) {
      // Only the registry holds it: both threads dropped their copies on
      // exit, so the joins below cannot block.
      if (entry.reader.joinable()) entry.reader.join();
      if (entry.writer.joinable()) entry.writer.join();
    } else {
      live.push_back(std::move(entry));
    }
  }
  conns_ = std::move(live);
}

void Server::writer_loop(const std::shared_ptr<Connection>& conn) {
  conn->outbound.push(hello_frame(options_.shards, registry_->size()));
  bool broken = false;
  while (auto frame = conn->outbound.pop()) {
    if (broken) continue;  // doomed peer: drain the queue, free producers
    if (!conn->stream.send_all(*frame + "\n")) broken = true;
  }
  // Queue closed and drained: everything deliverable was flushed. Send
  // FIN (write half only) so the client sees EOF *after* the flushed
  // frames. Shutting the read half here would make the kernel RST the
  // connection if the client still has bytes in flight — destroying the
  // very results just queued for delivery.
  conn->stream.shutdown_write();
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  char buf[16384];
  for (;;) {
    while (auto line = conn->lines.next()) handle_line(conn, *line);
    if (conn->lines.overflowed()) {
      conn->outbound.push(error_frame(
          -1, "frame exceeds " + std::to_string(options_.max_frame_bytes) +
                  " bytes; closing connection"));
      break;
    }
    const long got = conn->stream.recv_some(buf, sizeof buf);
    if (got <= 0) break;  // EOF or transport error
    conn->lines.append(std::string_view(buf, static_cast<std::size_t>(got)));
  }
  // Let every in-flight shard task deliver its result frame, then close
  // the outbound queue so the writer flushes and exits.
  conn->wait_idle();
  conn->outbound.close();
}

void Server::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  std::string error;
  const auto head = io::frame_head_from_json(line, &error);
  if (!head.has_value()) {
    conn->outbound.push(error_frame(-1, "bad frame: " + error));
    return;
  }
  if (head->frame == "request") {
    dispatch_request(conn, *head, line);
    return;
  }
  if (head->frame == "stats") {
    conn->outbound.push(stats_frame(stats()));
    return;
  }
  if (head->frame == "drain") {
    // Acknowledge, then record the request for the owning front end; the
    // actual drain() joins this very thread, so it must run elsewhere.
    conn->outbound.push(drain_frame());
    drain_requested_.store(true);
    drain_cv_.notify_all();
    return;
  }
  conn->outbound.push(
      error_frame(head->id, "unknown frame type '" + head->frame + "'"));
}

void Server::dispatch_request(const std::shared_ptr<Connection>& conn,
                              const FrameHead& head, const std::string& line) {
  if (head.id < 0) {
    conn->outbound.push(
        error_frame(-1, "request frame requires a non-negative id"));
    return;
  }
  if (draining_.load()) {
    conn->outbound.push(
        error_frame(head.id, "server draining; request rejected"));
    return;
  }
  std::string solver_name;
  std::string error;
  auto request = io::request_from_json(line, &solver_name, &error);
  if (!request.has_value()) {
    conn->outbound.push(error_frame(head.id, "bad request: " + error));
    return;
  }

  const engine::Solver* solver = registry_->find(solver_name);
  const std::uint64_t key = solver != nullptr
                                ? shard_key(*solver, *request)
                                : shard_key(solver_name);
  const std::size_t shard = shard_of(key, options_.shards);

  std::optional<Clock::time_point> deadline;
  if (head.deadline_ms > 0.0) {
    deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double, std::milli>(
                                      head.deadline_ms));
  }

  conn->task_started();
  const std::int64_t id = head.id;
  const bool accepted = shard_pool_->submit(
      shard, [this, conn, shard, id, deadline,
              solver_name = std::move(solver_name),
              request = std::move(*request)]() mutable {
        engine::SolveResult result;
        if (deadline.has_value() && Clock::now() >= *deadline) {
          // Expired while queued: answer timed_out instead of burning a
          // solver call the client already gave up on.
          result = engine::SolveResult::rejected(
              "deadline exceeded before solve (queue wait)");
          result.timed_out = true;
        } else {
          if (deadline.has_value()) {
            const double remaining_s =
                std::chrono::duration<double>(*deadline - Clock::now())
                    .count();
            // The engine's budget is advisory (solvers are single-shot),
            // but it converts an over-deadline answer into a flagged
            // timed_out response rather than an unqualified success.
            if (request.params.time_limit_s <= 0.0 ||
                remaining_s < request.params.time_limit_s) {
              request.params.time_limit_s = remaining_s;
            }
          }
          result = conn->session.solve(solver_name, request);
        }
        {
          ShardState& state = *shard_states_[shard];
          std::lock_guard<std::mutex> lk(state.mu);
          state.tally.absorb(result);
        }
        conn->outbound.push(result_frame(id, result));
        conn->task_finished();
      });
  if (!accepted) {
    // The pool is draining: answer like any other drain-time rejection.
    conn->task_finished();
    conn->outbound.push(
        error_frame(head.id, "server draining; request rejected"));
  }
}

bool Server::wait_drain_requested(double timeout_s) {
  std::unique_lock<std::mutex> lk(drain_mu_);
  drain_cv_.wait_for(
      lk, std::chrono::duration<double>(timeout_s),
      [&] { return drain_requested_.load(); });
  return drain_requested_.load();
}

void Server::drain() {
  if (!started_.load()) return;
  if (drained_.exchange(true)) return;
  draining_.store(true);

  // 1. No new connections.
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();

  // 2. Complete everything already accepted onto a shard. Readers are
  //    still serving: new request frames bounce with an error frame
  //    (draining_ is set), stats/drain frames still answer.
  shard_pool_->drain();

  // 3. Flush and close every connection: closing the outbound queue makes
  //    the writer deliver what remains, send FIN, and exit. Only AFTER the
  //    writer is joined (everything flushed and FIN'd) is the read half
  //    forced down too, so a reader blocked in recv() on a lingering
  //    client exits instead of holding the drain hostage.
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (ConnEntry& entry : conns_) entry.conn->outbound.close();
    for (ConnEntry& entry : conns_) {
      if (entry.writer.joinable()) entry.writer.join();
      entry.conn->stream.shutdown_both();
      if (entry.reader.joinable()) entry.reader.join();
    }
    conns_.clear();
  }

  // 4. Everything answered is answered; make it durable too. A drained
  //    server must leave the store holding every qualifying solve it did.
  cache_->flush_spill();
}

io::ServerStatsWire Server::stats() const {
  io::ServerStatsWire out;
  out.cache = cache_->stats();
  for (std::size_t i = 0; i < shard_states_.size(); ++i) {
    const ShardState& state = *shard_states_[i];
    std::lock_guard<std::mutex> lk(state.mu);
    out.shards.push_back(state.tally.wire(i));
    // Aggregate = the per-shard roll-ups folded together.
    out.pipeline.requests += state.tally.pipeline.requests;
    for (std::size_t s = 0; s < engine::kPipelineStageCount; ++s) {
      out.pipeline.stages[s].runs += state.tally.pipeline.stages[s].runs;
      out.pipeline.stages[s].skips += state.tally.pipeline.stages[s].skips;
      out.pipeline.stages[s].total_ms +=
          state.tally.pipeline.stages[s].total_ms;
    }
  }
  return out;
}

}  // namespace gapsched::serve

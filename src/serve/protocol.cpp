#include "gapsched/serve/protocol.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace gapsched::serve {

namespace {

/// Collapses the codec's pretty-printed documents onto one line. Raw
/// newline bytes only ever appear as formatting (string values escape
/// control characters), so dropping each '\n' and the indentation that
/// follows it is content-preserving.
std::string compact(std::string_view pretty) {
  std::string out;
  out.reserve(pretty.size());
  std::size_t i = 0;
  while (i < pretty.size()) {
    const char c = pretty[i];
    if (c == '\n') {
      ++i;
      while (i < pretty.size() && pretty[i] == ' ') ++i;
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

/// Splices a frame header into a one-line document: '{' + header + rest.
std::string with_header(std::string head_fields, std::string_view doc) {
  std::string out = "{" + std::move(head_fields);
  // doc is "{...}" or "{}"; keep a separating comma only when non-empty.
  std::string_view rest = doc.substr(1);
  while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\n')) {
    rest.remove_prefix(1);
  }
  if (rest != "}") out += ",";
  out += rest;
  return out;
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string hello_frame(std::size_t shards, std::size_t solvers) {
  return "{\"frame\":\"hello\",\"server\":\"gapsched_serve\",\"protocol\":" +
         std::to_string(kProtocolVersion) +
         ",\"shards\":" + std::to_string(shards) +
         ",\"solvers\":" + std::to_string(solvers) + "}";
}

std::string request_frame(std::int64_t id, std::string_view solver,
                          const engine::SolveRequest& request,
                          double deadline_ms) {
  std::string head = "\"frame\":\"request\",\"id\":" + std::to_string(id);
  if (deadline_ms > 0.0) {
    char buf[48];
    std::snprintf(buf, sizeof buf, ",\"deadline_ms\":%.6g", deadline_ms);
    head += buf;
  }
  return with_header(std::move(head),
                     compact(io::request_to_json(solver, request)));
}

std::string result_frame(std::int64_t id, const engine::SolveResult& result) {
  return with_header("\"frame\":\"result\",\"id\":" + std::to_string(id),
                     compact(io::result_to_json(result)));
}

std::string stats_request_frame() { return "{\"frame\":\"stats\"}"; }

std::string stats_frame(const io::ServerStatsWire& stats) {
  return with_header("\"frame\":\"stats\"",
                     compact(io::server_stats_to_json(stats)));
}

std::string drain_frame() { return "{\"frame\":\"drain\"}"; }

std::string error_frame(std::int64_t id, std::string_view message) {
  std::string out = "{\"frame\":\"error\",\"id\":" + std::to_string(id) +
                    ",\"message\":";
  append_escaped(out, message);
  out += "}";
  return out;
}

// --------------------------------------------------------- LineBuffer --

LineBuffer::LineBuffer(std::size_t max_line) : max_line_(max_line) {}

bool LineBuffer::append(std::string_view bytes) {
  if (overflowed_) return false;
  buffer_.append(bytes);
  if (buffer_.size() - start_ > max_line_ &&
      buffer_.find('\n', start_) == std::string::npos) {
    overflowed_ = true;
    return false;
  }
  return true;
}

std::optional<std::string> LineBuffer::next() {
  for (;;) {
    const std::size_t nl = buffer_.find('\n', start_);
    if (nl == std::string::npos) {
      // Compact the consumed prefix away so long sessions stay bounded.
      if (start_ > 0) {
        buffer_.erase(0, start_);
        start_ = 0;
      }
      if (buffer_.size() > max_line_) overflowed_ = true;
      return std::nullopt;
    }
    std::string line = buffer_.substr(start_, nl - start_);
    start_ = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // blank keep-alive lines are skipped
    if (line.size() > max_line_) {
      overflowed_ = true;
      return std::nullopt;
    }
    return line;
  }
}

// ------------------------------------------------------- TCP plumbing --

bool parse_host_port(std::string_view spec, std::string* host, int* port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return false;
  }
  const std::string_view port_text = spec.substr(colon + 1);
  int value = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
    if (value > 65535) return false;
  }
  if (value <= 0) return false;
  *host = std::string(spec.substr(0, colon));
  *port = value;
  return true;
}

namespace {

bool resolve(const std::string& host, int port, sockaddr_in* addr,
             std::string* error) {
  std::memset(addr, 0, sizeof *addr);
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string node = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, node.c_str(), &addr->sin_addr) != 1) {
    if (error != nullptr) {
      *error = "cannot resolve host '" + host + "' (IPv4 literal expected)";
    }
    return false;
  }
  return true;
}

}  // namespace

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

std::optional<TcpStream> TcpStream::connect(const std::string& host, int port,
                                            std::string* error) {
  sockaddr_in addr;
  if (!resolve(host, port, &addr, error)) return std::nullopt;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr) {
      *error = std::string(std::strerror(errno)) + " (" + host + ":" +
               std::to_string(port) + ")";
    }
    ::close(fd);
    return std::nullopt;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(fd);
}

bool TcpStream::send_all(std::string_view bytes, std::string* error) {
  while (!bytes.empty()) {
    const ssize_t sent =
        ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(sent));
  }
  return true;
}

long TcpStream::recv_some(char* buf, std::size_t cap) {
  for (;;) {
    const ssize_t got = ::recv(fd_, buf, cap, 0);
    if (got < 0 && errno == EINTR) continue;
    return static_cast<long>(got);
  }
}

void TcpStream::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void TcpStream::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(other.port_) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = other.port_;
  }
  return *this;
}

std::optional<TcpListener> TcpListener::listen(const std::string& host,
                                               int port, std::string* error) {
  sockaddr_in addr;
  if (!resolve(host, port, &addr, error)) return std::nullopt;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return std::nullopt;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 128) != 0) {
    if (error != nullptr) {
      *error = std::string(std::strerror(errno)) + " (" + host + ":" +
               std::to_string(port) + ")";
    }
    ::close(fd);
    return std::nullopt;
  }
  sockaddr_in bound;
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return std::nullopt;
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

std::optional<TcpStream> TcpListener::accept() {
  if (fd_ < 0) return std::nullopt;
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return std::nullopt;  // closed or shut down
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(fd);
}

void TcpListener::close() {
  // Shutdown (not close) so a concurrently blocked accept() returns
  // instead of racing the fd number; the destructor releases the fd.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

// ------------------------------------------------------ ClientChannel --

std::optional<ClientChannel> ClientChannel::dial(const std::string& host,
                                                 int port,
                                                 std::string* error) {
  auto stream = TcpStream::connect(host, port, error);
  if (!stream.has_value()) return std::nullopt;
  ClientChannel channel;
  channel.stream_ = std::move(*stream);
  return channel;
}

bool ClientChannel::send(const std::string& frame, std::string* error) {
  return stream_.send_all(frame + "\n", error);
}

std::optional<std::string> ClientChannel::next_frame(std::string* error) {
  if (error != nullptr) error->clear();
  for (;;) {
    if (auto line = lines_.next(); line.has_value()) return line;
    if (lines_.overflowed()) {
      if (error != nullptr) *error = "oversized frame from peer";
      return std::nullopt;
    }
    char buf[16384];
    const long got = stream_.recv_some(buf, sizeof buf);
    if (got <= 0) {
      if (got < 0 && error != nullptr) *error = std::strerror(errno);
      return std::nullopt;  // EOF keeps *error empty
    }
    lines_.append(std::string_view(buf, static_cast<std::size_t>(got)));
  }
}

}  // namespace gapsched::serve

#include "gapsched/serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "gapsched/scenarios/scenarios.hpp"
#include "gapsched/serve/protocol.hpp"

namespace gapsched::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// One pre-serialized request frame awaiting its slot in the window.
struct Prepared {
  std::size_t family = 0;
  std::int64_t id = 0;
  std::string frame;
};

/// Everything one connection learned; merged under a mutex at the end.
struct ConnOutcome {
  std::string error;  // first transport/protocol failure, if any
  std::uint64_t received = 0;
  std::uint64_t out_of_order = 0;
  std::uint64_t duplicate_ids = 0;
  std::uint64_t unknown_ids = 0;
  std::uint64_t bad_error_frames = 0;  // error frames without a known id
  /// (family, latency_ms) samples for summarize_latencies.
  std::vector<std::pair<std::size_t, double>> latencies;
  std::vector<FamilyReport> families;  // tallies only, labels added later
};

struct InFlight {
  std::size_t family = 0;
  Clock::time_point sent_at;
};

void drive_connection(const LoadOptions& options,
                      const std::vector<Prepared>& items,
                      std::size_t family_count, ConnOutcome* out) {
  out->families.resize(family_count);
  std::string error;
  auto channel = ClientChannel::dial(options.host, options.port, &error);
  if (!channel.has_value()) {
    out->error = "connect: " + error;
    return;
  }

  std::unordered_map<std::int64_t, InFlight> outstanding;
  std::deque<std::int64_t> send_order;  // for reorder observation
  std::size_t next = 0;

  const auto absorb_result = [&](std::int64_t id, const std::string& line) {
    const auto it = outstanding.find(id);
    if (it == outstanding.end()) {
      ++out->unknown_ids;
      return;
    }
    const InFlight flight = it->second;
    outstanding.erase(it);
    if (!send_order.empty() && send_order.front() != id) ++out->out_of_order;
    send_order.erase(std::find(send_order.begin(), send_order.end(), id));

    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - flight.sent_at)
            .count();
    out->latencies.emplace_back(flight.family, ms);
    ++out->received;
    FamilyReport& fam = out->families[flight.family];
    ++fam.received;

    std::string parse_error;
    const auto result = io::result_from_json(line, &parse_error);
    if (!result.has_value()) {
      if (out->error.empty()) {
        out->error = "unparseable result frame: " + parse_error;
      }
      return;
    }
    if (result->ok) {
      ++fam.ok;
      if (!result->feasible) ++fam.infeasible;
    } else {
      ++fam.rejected;
    }
    if (result->timed_out) ++fam.timed_out;
    if (result->audited && !result->audit_error.empty()) ++fam.refuted;
  };

  const auto absorb_error_frame = [&](const FrameHead& head) {
    const auto it = outstanding.find(head.id);
    if (it == outstanding.end()) {
      ++out->bad_error_frames;
      if (out->error.empty()) {
        out->error = "server error frame: " + head.message;
      }
      return;
    }
    const InFlight flight = it->second;
    outstanding.erase(it);
    send_order.erase(
        std::find(send_order.begin(), send_order.end(), head.id));
    ++out->received;
    FamilyReport& fam = out->families[flight.family];
    ++fam.received;
    ++fam.error_frames;
  };

  while (next < items.size() || !outstanding.empty()) {
    if (next < items.size() && outstanding.size() < options.window) {
      const Prepared& item = items[next];
      if (!channel->send(item.frame, &error)) {
        out->error = "send: " + error;
        return;
      }
      if (outstanding.count(item.id) != 0) ++out->duplicate_ids;
      outstanding[item.id] = InFlight{item.family, Clock::now()};
      send_order.push_back(item.id);
      ++next;
      continue;
    }
    const auto line = channel->next_frame(&error);
    if (!line.has_value()) {
      out->error = error.empty() ? std::string("connection closed early")
                                 : "recv: " + error;
      return;
    }
    std::string parse_error;
    const auto head = io::frame_head_from_json(*line, &parse_error);
    if (!head.has_value()) {
      out->error = "unparseable frame: " + parse_error;
      return;
    }
    if (head->frame == "hello" || head->frame == "stats" ||
        head->frame == "drain") {
      continue;  // control chatter, not a response
    }
    if (head->frame == "result") {
      absorb_result(head->id, *line);
    } else if (head->frame == "error") {
      absorb_error_frame(*head);
    } else if (out->error.empty()) {
      out->error = "unexpected frame type '" + head->frame + "'";
    }
  }
}

bool fetch_server_stats(const LoadOptions& options, io::ServerStatsWire* wire,
                        std::string* error) {
  auto channel = ClientChannel::dial(options.host, options.port, error);
  if (!channel.has_value()) return false;
  if (!channel->send(stats_request_frame(), error)) return false;
  for (;;) {
    const auto line = channel->next_frame(error);
    if (!line.has_value()) {
      if (error != nullptr && error->empty()) *error = "closed before stats";
      return false;
    }
    const auto head = io::frame_head_from_json(*line, error);
    if (!head.has_value()) return false;
    if (head->frame != "stats") continue;  // skip the hello
    const auto parsed = io::server_stats_from_json(*line, error);
    if (!parsed.has_value()) return false;
    *wire = *parsed;
    return true;
  }
}

}  // namespace

LatencySummary summarize_latencies(std::vector<double>& latencies_ms) {
  LatencySummary s;
  s.count = latencies_ms.size();
  if (latencies_ms.empty()) return s;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(latencies_ms.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, latencies_ms.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return latencies_ms[lo] * (1.0 - frac) + latencies_ms[hi] * frac;
  };
  s.p50_ms = at(0.50);
  s.p95_ms = at(0.95);
  s.p99_ms = at(0.99);
  s.max_ms = latencies_ms.back();
  double sum = 0.0;
  for (double v : latencies_ms) sum += v;
  s.mean_ms = sum / static_cast<double>(latencies_ms.size());
  return s;
}

LoadReport run_load(const LoadOptions& options,
                    const std::vector<LoadSpec>& specs) {
  LoadReport report;
  report.families.resize(specs.size());

  // Materialize the whole burst up front so generation cost never pollutes
  // the latency sample, then deal it round-robin across connections: each
  // connection sees an interleaved mix of families.
  std::vector<Prepared> burst;
  std::int64_t next_id = 1;
  for (std::size_t f = 0; f < specs.size(); ++f) {
    const LoadSpec& spec = specs[f];
    report.families[f].label = spec.scenario + "/" + spec.solver;
    for (std::size_t i = 0; i < spec.requests; ++i) {
      const bool duplicate =
          spec.duplicate_every != 0 && i != 0 && i % spec.duplicate_every == 0;
      const std::uint64_t seed =
          duplicate ? spec.seed_base
                    : spec.seed_base + static_cast<std::uint64_t>(i);
      auto instance = scenarios::make_scenario(spec.scenario, seed);
      if (!instance.has_value()) {
        report.error = "unknown scenario '" + spec.scenario + "'";
        return report;
      }
      engine::SolveRequest request;
      request.instance = std::move(*instance);
      request.objective = spec.objective;
      request.params = spec.params;
      if (options.validate) request.params.validate = true;
      Prepared item;
      item.family = f;
      item.id = next_id++;
      item.frame =
          request_frame(item.id, spec.solver, request, spec.deadline_ms);
      burst.push_back(std::move(item));
    }
  }
  report.sent = burst.size();
  for (const Prepared& item : burst) ++report.families[item.family].sent;

  const std::size_t conns = std::max<std::size_t>(1, options.connections);
  std::vector<std::vector<Prepared>> slices(conns);
  for (std::size_t i = 0; i < burst.size(); ++i) {
    slices[i % conns].push_back(std::move(burst[i]));
  }

  std::vector<ConnOutcome> outcomes(conns);
  const auto start = Clock::now();
  {
    std::vector<std::thread> drivers;
    drivers.reserve(conns);
    for (std::size_t c = 0; c < conns; ++c) {
      drivers.emplace_back([&, c] {
        drive_connection(options, slices[c], specs.size(), &outcomes[c]);
      });
    }
    for (std::thread& t : drivers) t.join();
  }
  report.wall_s = std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<std::vector<double>> family_latencies(specs.size());
  for (ConnOutcome& out : outcomes) {
    if (!out.error.empty() && report.error.empty()) report.error = out.error;
    report.received += out.received;
    report.out_of_order += out.out_of_order;
    report.duplicate_ids += out.duplicate_ids;
    report.unknown_ids += out.unknown_ids;
    report.error_frames += out.bad_error_frames;
    for (const auto& [family, ms] : out.latencies) {
      family_latencies[family].push_back(ms);
    }
    for (std::size_t f = 0; f < specs.size(); ++f) {
      FamilyReport& into = report.families[f];
      const FamilyReport& from = out.families[f];
      into.received += from.received;
      into.ok += from.ok;
      into.infeasible += from.infeasible;
      into.rejected += from.rejected;
      into.timed_out += from.timed_out;
      into.refuted += from.refuted;
      into.error_frames += from.error_frames;
    }
  }
  for (std::size_t f = 0; f < specs.size(); ++f) {
    report.families[f].latency = summarize_latencies(family_latencies[f]);
    report.refuted += report.families[f].refuted;
    report.error_frames += report.families[f].error_frames;
  }
  report.dropped = report.sent - report.received;
  report.throughput_rps =
      report.wall_s > 0.0
          ? static_cast<double>(report.received) / report.wall_s
          : 0.0;

  if (options.fetch_stats) {
    std::string error;
    report.server_stats_ok =
        fetch_server_stats(options, &report.server_stats, &error);
    if (!report.server_stats_ok && report.error.empty()) {
      report.error = "stats fetch: " + error;
    }
  }

  report.ok = report.error.empty() && report.dropped == 0 &&
              report.refuted == 0 && report.error_frames == 0 &&
              report.duplicate_ids == 0 && report.unknown_ids == 0 &&
              (!options.fetch_stats || report.server_stats_ok);
  return report;
}

}  // namespace gapsched::serve

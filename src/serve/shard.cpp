#include "gapsched/serve/shard.hpp"

#include <utility>

#include "gapsched/core/hash.hpp"
#include "gapsched/engine/cache.hpp"
#include "gapsched/prep/prep.hpp"

namespace gapsched::serve {

std::uint64_t shard_key(const engine::Solver& solver,
                        const engine::SolveRequest& request) {
  // The whole-instance cache key digest: routing granularity matches the
  // cache's whole-solve entries, so identical mega-batch clusters always
  // meet on one shard. (Decomposition components key separately inside
  // the pipeline; routing at whole-request granularity is what keeps one
  // request on one worker.)
  const prep::Canonical canon = prep::canonicalize(request.instance);
  return engine::make_cache_key(solver.info(), request.objective,
                                request.params, canon.instance)
      .digest;
}

std::uint64_t shard_key(std::string_view solver_name) {
  return fnv1a64(solver_name);
}

std::size_t shard_of(std::uint64_t key, std::size_t shards) {
  if (shards <= 1) return 0;
  // Fibonacci multiplicative spread: the cache digest's low bits are
  // already well mixed, but cheap insurance against modulo bias costs one
  // multiply.
  return static_cast<std::size_t>((key * 11400714819323198485ull) >> 32) %
         shards;
}

void ShardTally::absorb(const engine::SolveResult& result) {
  ++requests;
  if (!result.ok) ++rejected;
  if (result.timed_out) ++timed_out;
  if (result.audited && !result.audit_error.empty()) ++refuted;
  if (result.stats.cache_hit) ++cache_hits;
  component_cache_hits += result.stats.component_cache_hits;
  pipeline.absorb(result.stats);
}

io::ShardStatsWire ShardTally::wire(std::size_t shard) const {
  io::ShardStatsWire w;
  w.shard = static_cast<std::int64_t>(shard);
  w.requests = requests;
  w.rejected = rejected;
  w.timed_out = timed_out;
  w.refuted = refuted;
  w.cache_hits = cache_hits;
  w.component_cache_hits = component_cache_hits;
  w.pipeline = pipeline;
  return w;
}

ShardPool::ShardPool(std::size_t shards, std::size_t queue_capacity) {
  const std::size_t n = shards == 0 ? 1 : shards;
  queues_.reserve(n);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<BoundedQueue<Task>>(queue_capacity));
  }
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([queue = queues_[i].get()] {
      while (auto task = queue->pop()) {
        (*task)();
      }
    });
  }
}

ShardPool::~ShardPool() { drain(); }

bool ShardPool::submit(std::size_t shard, Task task) {
  return queues_[shard % queues_.size()]->push(std::move(task));
}

std::size_t ShardPool::queued(std::size_t shard) const {
  return queues_[shard % queues_.size()]->size();
}

void ShardPool::drain() {
  {
    std::lock_guard<std::mutex> lk(drain_mu_);
    if (drained_) return;
    drained_ = true;
  }
  for (auto& queue : queues_) queue->close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace gapsched::serve

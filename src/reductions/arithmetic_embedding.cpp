#include "gapsched/reductions/arithmetic_embedding.hpp"

#include <cassert>

namespace gapsched {

std::pair<int, Time> ArithmeticEmbedding::unembed_time(Time t) const {
  const Time rel = t - origin;
  assert(rel >= 0);
  const int q = static_cast<int>(rel / period);
  return {q, origin + rel % period};
}

Schedule ArithmeticEmbedding::unembed_schedule(const Schedule& s) const {
  Schedule out(s.size());
  for (std::size_t j = 0; j < s.size(); ++j) {
    if (!s.is_scheduled(j)) continue;
    const auto [q, t] = unembed_time(s.at(j)->time);
    out.place(j, t, q);
  }
  return out;
}

ArithmeticEmbedding embed_multiprocessor(const Instance& inst) {
  assert(inst.is_one_interval() &&
         "arithmetic embedding requires one-interval jobs");
  ArithmeticEmbedding emb;
  emb.processors = inst.processors;
  emb.embedded.processors = 1;
  if (inst.n() == 0) {
    emb.period = 2;
    return emb;
  }
  emb.origin = inst.earliest_release();
  // Strictly longer than the horizon span + 1 so segments cannot touch.
  emb.period = inst.latest_deadline() - emb.origin + 2;

  emb.embedded.jobs.reserve(inst.n());
  for (const Job& j : inst.jobs) {
    std::vector<Interval> ivs;
    ivs.reserve(static_cast<std::size_t>(inst.processors));
    for (int q = 0; q < inst.processors; ++q) {
      const Time shift = static_cast<Time>(q) * emb.period;
      ivs.push_back({j.release() + shift, j.deadline() + shift});
    }
    emb.embedded.jobs.push_back(Job{TimeSet(std::move(ivs))});
  }
  return emb;
}

}  // namespace gapsched

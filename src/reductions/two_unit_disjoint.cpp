#include "gapsched/reductions/two_unit_disjoint.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>

namespace gapsched {

namespace {

// Simple union-find over 0..n-1.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

// Dead units of a compressed instance: exactly one between consecutive live
// intervals.
std::vector<Time> dead_units(const CompressedInstance& c) {
  std::vector<Time> dead;
  for (std::size_t i = 0; i + 1 < c.compressed_intervals.size(); ++i) {
    dead.push_back(c.compressed_intervals[i].hi + 1);
  }
  return dead;
}

}  // namespace

TwoUnitDisjointReduction reduce_two_unit_to_disjoint(const Instance& inst) {
  TwoUnitDisjointReduction red;
  red.compressed_source = compress_dead_time(inst);
  const Instance& src = red.compressed_source.instance;
  red.instance.processors = 1;

  // Collect the distinct allowed times and index them after the jobs.
  std::map<Time, std::size_t> time_id;
  for (const Job& j : src.jobs) {
    assert(j.allowed.size() <= 2 &&
           "two-unit reduction requires <= 2 allowed times per job");
    for (Time t : j.allowed.to_vector()) {
      time_id.emplace(t, src.n() + time_id.size());
    }
  }

  // Connected components of the job/time incidence graph.
  UnionFind uf(src.n() + time_id.size());
  for (std::size_t j = 0; j < src.n(); ++j) {
    for (Time t : src.jobs[j].allowed.to_vector()) {
      uf.unite(j, time_id.at(t));
    }
  }
  struct Component {
    std::size_t jobs = 0;
    std::vector<Time> times;
  };
  std::map<std::size_t, Component> comps;
  for (std::size_t j = 0; j < src.n(); ++j) ++comps[uf.find(j)].jobs;
  for (const auto& [t, id] : time_id) comps[uf.find(id)].times.push_back(t);

  // One new job per slack component (|times| == |jobs| + 1), allowed at the
  // component's times; tight components vanish; deficits mean infeasible.
  for (const auto& [root, comp] : comps) {
    if (comp.times.size() + 1 == comp.jobs + 1) continue;  // tight
    if (comp.times.size() == comp.jobs + 1) {
      red.instance.jobs.push_back(Job{TimeSet::points(comp.times)});
    } else {
      return red;  // fewer times than jobs: source infeasible
    }
  }
  // Pinned jobs at the dead units.
  for (Time t : dead_units(red.compressed_source)) {
    red.instance.jobs.push_back(Job{TimeSet::points({t})});
  }
  red.feasible_input = true;
  return red;
}

TwoUnitDisjointReduction reduce_disjoint_to_two_unit(const Instance& inst) {
  TwoUnitDisjointReduction red;
  red.compressed_source = compress_dead_time(inst);
  const Instance& src = red.compressed_source.instance;
  red.instance.processors = 1;

#ifndef NDEBUG
  {  // Allowed sets must be pairwise disjoint.
    std::vector<Time> all;
    for (const Job& j : src.jobs) {
      for (Time t : j.allowed.to_vector()) all.push_back(t);
    }
    std::sort(all.begin(), all.end());
    assert(std::adjacent_find(all.begin(), all.end()) == all.end() &&
           "disjoint-unit reduction requires disjoint allowed sets");
  }
#endif

  // Chain jobs: {t_m, t_{m+1}} for each consecutive pair of a job's times.
  for (const Job& j : src.jobs) {
    const std::vector<Time> ts = j.allowed.to_vector();
    for (std::size_t m = 0; m + 1 < ts.size(); ++m) {
      red.instance.jobs.push_back(Job{TimeSet::points({ts[m], ts[m + 1]})});
    }
  }
  // Pinned jobs at the dead units.
  for (Time t : dead_units(red.compressed_source)) {
    red.instance.jobs.push_back(Job{TimeSet::points({t})});
  }
  red.feasible_input = true;
  return red;
}

}  // namespace gapsched

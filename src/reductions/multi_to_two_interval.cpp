#include "gapsched/reductions/multi_to_two_interval.hpp"

#include <algorithm>

namespace gapsched {

TwoIntervalReduction reduce_multi_to_two_interval(const Instance& inst) {
  TwoIntervalReduction red;
  red.instance.processors = 1;
  if (inst.n() == 0) return red;

  // Extra blocks start two units after the whole original timeline so the
  // block's span can never merge with a normal span.
  Time cursor = inst.latest_deadline() + 3;
  const Time block_start = cursor;

  for (const Job& job : inst.jobs) {
    const auto& ivs = job.allowed.intervals();
    const std::size_t k = ivs.size();
    if (k <= 2) {
      red.instance.jobs.push_back(job);
      continue;
    }
    red.has_extra_block = true;
    const Interval extra{cursor, cursor + 2 * static_cast<Time>(k) - 2};
    // k dummy jobs pinned at the odd positions 1, 3, ..., 2k-1 (offsets
    // 0, 2, ..., 2k-2 from the block start).
    for (std::size_t i = 0; i < k; ++i) {
      const Time pos = extra.lo + 2 * static_cast<Time>(i);
      red.instance.jobs.push_back(Job{TimeSet({{pos, pos}})});
    }
    // Replacement job r_i: I_i or anywhere in the extra interval.
    for (std::size_t i = 0; i < k; ++i) {
      red.instance.jobs.push_back(Job{TimeSet({ivs[i], extra})});
    }
    cursor = extra.hi + 1;  // next block immediately adjacent
  }
  if (red.has_extra_block) red.extra_block = {block_start, cursor - 1};
  return red;
}

}  // namespace gapsched

#include "gapsched/reductions/multi_to_three_unit.hpp"

#include <algorithm>

namespace gapsched {

ThreeUnitReduction reduce_multi_to_three_unit(const Instance& inst) {
  ThreeUnitReduction red;
  red.instance.processors = 1;
  if (inst.n() == 0) return red;

  Time cursor = inst.latest_deadline() + 3;
  const Time block_start = cursor;

  for (const Job& job : inst.jobs) {
    const std::vector<Time> times = job.allowed.to_vector();
    const std::size_t k = times.size();
    if (k <= 3) {
      // Already a <= 3-unit job once written as unit points.
      red.instance.jobs.push_back(Job{TimeSet::points(times)});
      continue;
    }
    red.has_extra_block = true;
    // Positions 1..2k-1 of the extra interval; pos(m) in absolute time.
    const Time base = cursor;
    auto pos = [base](std::size_t m) {
      return base + static_cast<Time>(m) - 1;
    };
    // Dummies at odd positions.
    for (std::size_t m = 1; m <= 2 * k - 1; m += 2) {
      red.instance.jobs.push_back(Job{TimeSet({{pos(m), pos(m)}})});
    }
    // Replacement jobs j_1..j_{k-1}: { t_i, pos(2i), pos(2i+2 or wrap 2) }.
    for (std::size_t i = 1; i + 1 <= k; ++i) {
      const std::size_t alt = (2 * i + 2 <= 2 * k - 2) ? 2 * i + 2 : 2;
      red.instance.jobs.push_back(Job{
          TimeSet::points({times[i - 1], pos(2 * i), pos(alt)})});
    }
    // j_k: { t_k, pos(2), pos(4) }.
    red.instance.jobs.push_back(
        Job{TimeSet::points({times[k - 1], pos(2), pos(4)})});
    cursor = pos(2 * k - 1) + 1;  // next block immediately adjacent
  }
  if (red.has_extra_block) red.extra_block = {block_start, cursor - 1};
  return red;
}

}  // namespace gapsched

#include "gapsched/reductions/setcover_to_disjoint_unit.hpp"

#include <cassert>

namespace gapsched {

DisjointUnitReduction reduce_setcover_to_disjoint_unit(
    const SetCoverInstance& sc) {
  assert(sc.max_set_size() <= 10 && "subset enumeration is exponential in B");
  DisjointUnitReduction red;
  red.instance.processors = 1;

  std::vector<std::vector<Time>> allowed_points(sc.universe);
  Time cursor = 0;
  for (std::size_t i = 0; i < sc.sets.size(); ++i) {
    const auto& set = sc.sets[i];
    const std::size_t b = set.size();
    // Every non-empty subset of set i, encoded by bitmask.
    for (std::uint32_t mask = 1; mask < (std::uint32_t{1} << b); ++mask) {
      std::vector<std::size_t> subset;
      for (std::size_t pos = 0; pos < b; ++pos) {
        if (mask >> pos & 1u) subset.push_back(set[pos]);
      }
      const Time len = static_cast<Time>(subset.size());
      red.intervals.push_back({cursor, cursor + len - 1});
      // Element ranked r within the subset may run at cursor + r.
      for (std::size_t r = 0; r < subset.size(); ++r) {
        allowed_points[subset[r]].push_back(cursor + static_cast<Time>(r));
      }
      red.subsets.push_back({i, std::move(subset)});
      cursor += len + 2;  // non-adjacent so spans can never merge
    }
  }

  red.instance.jobs.reserve(sc.universe);
  for (std::size_t e = 0; e < sc.universe; ++e) {
    assert(!allowed_points[e].empty() && "element not covered by any set");
    red.instance.jobs.push_back(Job{TimeSet::points(allowed_points[e])});
  }
  return red;
}

}  // namespace gapsched

#include "gapsched/reductions/setcover_to_powermin.hpp"

#include <algorithm>
#include <cassert>

namespace gapsched {

std::vector<std::size_t> SetCoverReduction::cover_from_schedule(
    const Schedule& s) const {
  std::vector<char> used(set_intervals.size(), 0);
  for (std::size_t j = 0; j < s.size(); ++j) {
    if (!s.is_scheduled(j)) continue;
    const Time t = s.at(j)->time;
    if (extra_interval.contains(t)) continue;
    for (std::size_t i = 0; i < set_intervals.size(); ++i) {
      if (set_intervals[i].contains(t)) {
        used[i] = 1;
        break;  // intervals are disjoint
      }
    }
  }
  std::vector<std::size_t> cover;
  for (std::size_t i = 0; i < set_intervals.size(); ++i) {
    if (used[i]) cover.push_back(i);
  }
  return cover;
}

SetCoverReduction reduce_setcover_to_powermin(const SetCoverInstance& sc,
                                              double alpha_override) {
  SetCoverReduction red;
  const auto n = static_cast<Time>(sc.universe);
  red.alpha = alpha_override >= 0.0 ? alpha_override : static_cast<double>(n);

  // Spacing strictly greater than n^3 (and at least 2 so spans can never
  // merge across intervals even for tiny universes).
  const Time spacing = std::max<Time>(n * n * n + 1, 2);

  Time cursor = 0;
  red.set_intervals.reserve(sc.sets.size());
  for (const auto& set : sc.sets) {
    const Time len = std::max<Time>(1, static_cast<Time>(set.size()));
    red.set_intervals.push_back({cursor, cursor + len - 1});
    cursor += len + spacing;
  }
  red.extra_interval = {cursor, cursor};

  // Element jobs: allowed anywhere in the intervals of containing sets.
  red.instance.processors = 1;
  red.instance.jobs.reserve(sc.universe + 1);
  for (std::size_t e = 0; e < sc.universe; ++e) {
    std::vector<Interval> allowed;
    for (std::size_t i = 0; i < sc.sets.size(); ++i) {
      if (std::binary_search(sc.sets[i].begin(), sc.sets[i].end(), e)) {
        allowed.push_back(red.set_intervals[i]);
      }
    }
    assert(!allowed.empty() && "element not covered by any set");
    red.instance.jobs.push_back(Job{TimeSet(std::move(allowed))});
  }
  // The extra job, pinned to its own unit interval.
  red.instance.jobs.push_back(Job{TimeSet({red.extra_interval})});
  return red;
}

}  // namespace gapsched
